package fl

import (
	"math/rand"

	"repro/internal/compress"
)

// CompressedFedAvg is FedAvg with compressed client uploads: each client
// sends a lossy encoding of its *update* Δ_k = w_k - w_global (not the raw
// parameters), with per-client error feedback — the residual the compressor
// dropped is added back before the next round's compression, which keeps
// biased compressors (top-k) convergent. This realizes the
// compression-based strategies of Konečný et al. that the paper's related
// work builds on, and quantifies the accuracy/bytes trade-off.
//
// All per-client buffers (payload, residual, reconstruction) are retained
// across rounds through the CompressReuse/DecompressInto fast paths, so the
// steady-state round loop allocates nothing in the compression layer, and
// the compressor RNG is keyed to (Seed, round, client) so results do not
// depend on worker scheduling.
type CompressedFedAvg struct {
	Compressor compress.Compressor
	// ErrorFeedback accumulates dropped mass per client when true.
	ErrorFeedback bool

	f      *Federation
	global []float64
	state  []compressedClientState
}

// compressedClientState is one client's retained compression buffers.
// Indexed by client ID, touched by exactly one worker per round, so no
// locking is needed.
type compressedClientState struct {
	payload  compress.Payload
	delta    []float64
	recon    []float64
	residual []float64
}

// NewCompressedFedAvg creates the compressed baseline.
func NewCompressedFedAvg(c compress.Compressor, errorFeedback bool) *CompressedFedAvg {
	return &CompressedFedAvg{Compressor: c, ErrorFeedback: errorFeedback}
}

// Name returns e.g. "FedAvg+top64".
func (a *CompressedFedAvg) Name() string { return "FedAvg+" + a.Compressor.Name() }

// Setup initializes the global model and the per-client buffer store.
func (a *CompressedFedAvg) Setup(f *Federation) {
	a.f = f
	a.global = f.InitialParams()
	a.state = make([]compressedClientState, len(f.Clients))
}

// GlobalParams returns the current global model.
func (a *CompressedFedAvg) GlobalParams() []float64 { return a.global }

// Round runs one compressed round.
func (a *CompressedFedAvg) Round(round int, sampled []int) RoundResult {
	f := a.f
	global := a.global
	bytesPerClient := make([]int64, len(a.state))
	outs := f.MapClients(round, sampled, func(w *Worker, c *Client, rng *rand.Rand) ClientOut {
		w.LoadModel(global)
		loss := f.LocalTrain(w, c, rng, f.DefaultLocalOpts(round))
		local := w.Net().GetFlat()
		st := &a.state[c.ID]
		// Update + residual from previous rounds.
		delta := resizeFloats(&st.delta, len(local))
		for i := range delta {
			delta[i] = local[i] - global[i]
		}
		if a.ErrorFeedback {
			if len(st.residual) != len(delta) {
				st.residual = make([]float64, len(delta))
			}
			for i := range delta {
				delta[i] += st.residual[i]
			}
		}
		st.payload = compress.CompressReuse(a.Compressor, st.payload, delta,
			compress.RNG(f.Cfg.Seed, round, c.ID))
		recon := resizeFloats(&st.recon, len(delta))
		compress.DecompressInto(st.payload, recon)
		rel := compress.RelError(delta, recon)
		if a.ErrorFeedback {
			for i := range st.residual {
				st.residual[i] = delta[i] - recon[i]
			}
		}
		bytesPerClient[c.ID] = st.payload.Bytes() + 24
		// Report the reconstructed model the server actually sees.
		for i := range recon {
			recon[i] += global[i]
		}
		return ClientOut{Client: c, Params: recon, Loss: loss, ReconErr: rel}
	})
	a.global = WeightedAverage(outs)
	var upBytes int64
	for _, b := range bytesPerClient {
		upBytes += b
	}
	p := int64(len(sampled))
	return RoundResult{
		TrainLoss:    MeanLoss(outs),
		ClientLosses: LossMap(outs),
		DownBytes:    p * PayloadBytes(f.NumParams()), // broadcast stays dense
		UpBytes:      upBytes,
		UpScheme:     a.Compressor.Name(),
		ReconErr:     MeanReconErr(outs),
	}
}
