package fl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/compress"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// --- Samplers ---

func TestUniformSamplerIsDefault(t *testing.T) {
	f := tinyFederation(t, 6, 1.0, 0.5)
	if f.Cfg.Sampler.Name() != "uniform" {
		t.Fatalf("default sampler = %s", f.Cfg.Sampler.Name())
	}
	if got := len(f.SampleClients(0)); got != 3 {
		t.Fatalf("cohort size %d", got)
	}
}

func TestSizeWeightedSamplerPrefersLargeShards(t *testing.T) {
	// Build a federation with one huge client and many tiny ones.
	big := data.SynthMNIST(300, 1)
	shards := []*data.Dataset{big.Subset(seq(0, 260))}
	for k := 0; k < 9; k++ {
		shards = append(shards, big.Subset(seq(260+k*4, 260+k*4+4)))
	}
	cfg := Config{
		Builder: nn.NewMLP(big.Features(), 8, 4, big.Classes),
		Seed:    3, SampleRatio: 0.2, Sampler: SizeWeightedSampler{},
	}
	f := NewFederation(cfg, shards, nil)
	hits := 0
	const rounds = 50
	for r := 0; r < rounds; r++ {
		for _, k := range f.SampleClients(r) {
			if k == 0 {
				hits++
			}
		}
	}
	// Client 0 holds ~88% of the data; with 2 slots/round it should be
	// picked nearly every round. Uniform would pick it ~20% of rounds.
	if hits < rounds*3/4 {
		t.Fatalf("size-weighted sampler picked the big client only %d/%d rounds", hits, rounds)
	}
}

func TestPowerOfChoicePrefersHighLoss(t *testing.T) {
	f := tinyFederation(t, 10, 1.0, 0.3)
	s := NewPowerOfChoiceSampler(3)
	f.Cfg.Sampler = s
	// Mark clients 0..4 as low-loss, 5..9 as high-loss.
	for id := 0; id < 10; id++ {
		loss := 0.1
		if id >= 5 {
			loss = 5.0
		}
		s.Observe(id, loss)
	}
	high := 0
	total := 0
	for r := 0; r < 30; r++ {
		for _, k := range f.SampleClients(r) {
			total++
			if k >= 5 {
				high++
			}
		}
	}
	if float64(high)/float64(total) < 0.7 {
		t.Fatalf("power-of-choice picked high-loss clients only %d/%d times", high, total)
	}
}

func TestPowerOfChoiceExploresUnseen(t *testing.T) {
	f := tinyFederation(t, 6, 1.0, 0.5)
	s := NewPowerOfChoiceSampler(2)
	f.Cfg.Sampler = s
	s.Observe(0, 0.1) // only client 0 seen; the rest rank as +Inf
	picked := f.SampleClients(1)
	for _, k := range picked {
		if k == 0 {
			t.Fatalf("seen low-loss client picked over unseen ones: %v", picked)
		}
	}
}

func TestRunFeedsLossObserver(t *testing.T) {
	f := tinyFederation(t, 5, 0.0, 1.0)
	s := NewPowerOfChoiceSampler(2)
	f.Cfg.Sampler = s
	Run(f, NewFedAvg(), 2)
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.losses) != 5 {
		t.Fatalf("observer saw %d clients, want 5", len(s.losses))
	}
}

func seq(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}

// --- CompressedFedAvg ---

func TestCompressedFedAvgLearns(t *testing.T) {
	for _, tc := range []struct {
		name string
		c    compress.Compressor
	}{
		{"identity", compress.Identity{}},
		{"q8", compress.NewQuantizer(8)},
		{"topk", compress.NewTopK(2000)},
	} {
		f := tinyFederation(t, 4, 0.0, 1.0)
		alg := NewCompressedFedAvg(tc.c, true)
		h := Run(f, alg, 8)
		if h.FinalAccuracy(2) < 0.5 {
			t.Fatalf("%s: accuracy %v", tc.name, h.FinalAccuracy(2))
		}
	}
}

func TestCompressedFedAvgSavesUpload(t *testing.T) {
	fDense := tinyFederation(t, 4, 1.0, 1.0)
	hDense := Run(fDense, NewFedAvg(), 2)
	fQ := tinyFederation(t, 4, 1.0, 1.0)
	hQ := Run(fQ, NewCompressedFedAvg(compress.NewQuantizer(8), true), 2)
	upD, _ := hDense.TotalBytes()
	upQ, _ := hQ.TotalBytes()
	if upQ >= upD/4 {
		t.Fatalf("8-bit upload %d should be ≪ dense %d", upQ, upD)
	}
}

func TestCompressedFedAvgIdentityMatchesFedAvg(t *testing.T) {
	fA := tinyFederation(t, 3, 0.0, 1.0)
	hA := Run(fA, NewFedAvg(), 3)
	fB := tinyFederation(t, 3, 0.0, 1.0)
	hB := Run(fB, NewCompressedFedAvg(compress.Identity{}, false), 3)
	for i := range hA.Rounds {
		if math.Abs(hA.Rounds[i].TrainLoss-hB.Rounds[i].TrainLoss) > 1e-12 {
			t.Fatalf("identity compression must reproduce FedAvg exactly (round %d)", i)
		}
	}
}

func TestErrorFeedbackHelpsTopK(t *testing.T) {
	run := func(ef bool) float64 {
		f := tinyFederation(t, 4, 0.0, 1.0)
		// Aggressive sparsification: keep ~2% of coordinates.
		k := f.NumParams() / 50
		h := Run(f, NewCompressedFedAvg(compress.NewTopK(k), ef), 10)
		return h.FinalAccuracy(3)
	}
	with, without := run(true), run(false)
	if with < without-0.02 {
		t.Fatalf("error feedback should not hurt: with %v, without %v", with, without)
	}
}

// --- FedNova ---

func TestFedNovaLearns(t *testing.T) {
	f := quantitySkewFederation(t)
	h := Run(f, NewFedNova(), 8)
	if h.FinalAccuracy(2) < 0.5 {
		t.Fatalf("FedNova accuracy %v", h.FinalAccuracy(2))
	}
}

func TestFedNovaStepsScaleWithShardSize(t *testing.T) {
	f := quantitySkewFederation(t)
	a := NewFedNova()
	a.Setup(f)
	big, small := 0, math.MaxInt
	for _, c := range f.Clients {
		tau := a.LocalSteps(c)
		if tau > big {
			big = tau
		}
		if tau < small {
			small = tau
		}
	}
	if big <= small {
		t.Fatalf("expected heterogeneous steps, got uniform %d", big)
	}
}

func TestFedNovaUniformStepsMatchesFedAvg(t *testing.T) {
	// With ProportionalSteps off, FedNova's normalized update reduces to
	// exactly FedAvg's averaged model.
	fA := tinyFederation(t, 3, 0.0, 1.0)
	hA := Run(fA, NewFedAvg(), 3)
	fB := tinyFederation(t, 3, 0.0, 1.0)
	nova := &FedNova{ProportionalSteps: false}
	hB := Run(fB, nova, 3)
	for i := range hA.Rounds {
		if math.Abs(hA.Rounds[i].TrainLoss-hB.Rounds[i].TrainLoss) > 1e-9 {
			t.Fatalf("round %d: FedNova(uniform) loss %v != FedAvg %v",
				i, hB.Rounds[i].TrainLoss, hA.Rounds[i].TrainLoss)
		}
		if math.Abs(hA.Rounds[i].TestAcc-hB.Rounds[i].TestAcc) > 1e-9 {
			t.Fatalf("round %d accuracies differ", i)
		}
	}
}

func quantitySkewFederation(t *testing.T) *Federation {
	t.Helper()
	train := data.SynthMNIST(600, 1)
	test := data.SynthMNIST(300, 2)
	rng := rand.New(rand.NewSource(3))
	parts := data.PartitionQuantitySkew(train.Len(), 5, 1.2, rng)
	shards := make([]*data.Dataset, len(parts))
	for k, idx := range parts {
		shards[k] = train.Subset(idx)
	}
	return NewFederation(Config{
		Builder:   nn.NewMLP(train.Features(), 32, 16, train.Classes),
		ModelSeed: 7, Seed: 11, LocalSteps: 5, BatchSize: 20,
	}, shards, test)
}

// --- MOON ---

func TestMOONLearns(t *testing.T) {
	f := tinyFederation(t, 4, 0.0, 1.0)
	h := Run(f, NewMOON(1.0, 0.5), 8)
	if h.FinalAccuracy(2) < 0.5 {
		t.Fatalf("MOON accuracy %v", h.FinalAccuracy(2))
	}
}

func TestMOONTracksPreviousModels(t *testing.T) {
	f := tinyFederation(t, 3, 0.0, 1.0)
	a := NewMOON(1.0, 0.5)
	Run(f, a, 2)
	if len(a.prev) != 3 {
		t.Fatalf("previous models for %d clients, want 3", len(a.prev))
	}
}

// TestMOONContrastiveGradNumeric checks the hand-derived contrastive
// gradient against finite differences of ContrastiveLoss.
func TestMOONContrastiveGradNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewMOON(0.7, 0.5)
	z := tensor.RandNormal(rng, 1, 4, 6)
	zg := tensor.RandNormal(rng, 1, 4, 6)
	zp := tensor.RandNormal(rng, 1, 4, 6)
	grad := a.contrastiveGrad(z, zg, zp)
	const eps, tol = 1e-6, 1e-5
	for i := range z.Data {
		orig := z.Data[i]
		z.Data[i] = orig + eps
		up := a.Mu * a.ContrastiveLoss(z, zg, zp)
		z.Data[i] = orig - eps
		down := a.Mu * a.ContrastiveLoss(z, zg, zp)
		z.Data[i] = orig
		want := (up - down) / (2 * eps)
		if math.Abs(grad.Data[i]-want) > tol*(1+math.Abs(want)) {
			t.Fatalf("contrastive grad[%d] = %v, numeric %v", i, grad.Data[i], want)
		}
	}
}

func TestCosineAndGrad(t *testing.T) {
	c, g := cosineAndGrad([]float64{1, 0}, []float64{0, 1})
	if c != 0 || g[0] != 0 || g[1] != 1 {
		t.Fatalf("cosine = %v grad = %v", c, g)
	}
	c, _ = cosineAndGrad([]float64{2, 0}, []float64{5, 0})
	if math.Abs(c-1) > 1e-12 {
		t.Fatalf("parallel cosine = %v", c)
	}
	c, g = cosineAndGrad([]float64{0, 0}, []float64{1, 1})
	if c != 0 || g[0] != 0 {
		t.Fatal("degenerate cosine must be 0 with zero grad")
	}
}

// --- Personalization ---

func TestPersonalizeImprovesOverGlobalOnNonIID(t *testing.T) {
	f := tinyFederation(t, 5, 0.0, 1.0)
	a := NewFedAvg()
	Run(f, a, 4)
	global := a.GlobalParams()
	base := f.Personalize(global, PersonalizeOptions{Steps: 0, Seed: 1})
	tuned := f.Personalize(global, PersonalizeOptions{Steps: 20, LR: 0.05, Seed: 1})
	meanBase, meanTuned := 0.0, 0.0
	for k := range base {
		meanBase += base[k]
		meanTuned += tuned[k]
	}
	// On totally non-IID shards (≈2 classes each) a few local steps give a
	// large boost — the personalization premise.
	if meanTuned <= meanBase {
		t.Fatalf("fine-tuning did not help: base %v, tuned %v", meanBase/5, meanTuned/5)
	}
}

func TestPersonalizeDoesNotMutateGlobal(t *testing.T) {
	f := tinyFederation(t, 3, 0.0, 1.0)
	a := NewFedAvg()
	Run(f, a, 2)
	global := a.GlobalParams()
	snapshot := append([]float64(nil), global...)
	f.Personalize(global, PersonalizeOptions{Steps: 5, Seed: 1})
	for i := range global {
		if global[i] != snapshot[i] {
			t.Fatal("Personalize must not modify the global model")
		}
	}
}

func TestPersonalizeDeterministic(t *testing.T) {
	f := tinyFederation(t, 3, 0.0, 1.0)
	a := NewFedAvg()
	Run(f, a, 2)
	x := f.Personalize(a.GlobalParams(), PersonalizeOptions{Steps: 5, Seed: 9})
	y := f.Personalize(a.GlobalParams(), PersonalizeOptions{Steps: 5, Seed: 9})
	for k := range x {
		if x[k] != y[k] {
			t.Fatal("same seed must reproduce personalization")
		}
	}
}

func TestEvaluateConfusion(t *testing.T) {
	f := tinyFederation(t, 3, 1.0, 1.0)
	a := NewFedAvg()
	h := Run(f, a, 6)
	conf := f.EvaluateConfusion(a.GlobalParams(), f.Test)
	if conf.Total() != f.Test.Len() {
		t.Fatalf("confusion covers %d of %d samples", conf.Total(), f.Test.Len())
	}
	if math.Abs(conf.Accuracy()-h.FinalAccuracy(1)) > 1e-12 {
		t.Fatalf("confusion accuracy %v != final accuracy %v", conf.Accuracy(), h.FinalAccuracy(1))
	}
	if conf.MacroF1() <= 0 {
		t.Fatal("macro F1 must be positive after training")
	}
}

// Property: WeightedAverage of identical vectors is that vector, and the
// average is permutation-invariant.
func TestQuickWeightedAverageProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(5)
		dim := 1 + rng.Intn(20)
		mk := func(n int, v []float64) ClientOut {
			ds := &data.Dataset{X: tensor.New(n, 1), Y: make([]int, n), Classes: 2}
			return ClientOut{Client: &Client{Data: ds}, Params: v}
		}
		// Identical vectors → identity.
		v := make([]float64, dim)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		var same []ClientOut
		for i := 0; i < k; i++ {
			same = append(same, mk(1+rng.Intn(9), v))
		}
		got := WeightedAverage(same)
		for i := range v {
			if math.Abs(got[i]-v[i]) > 1e-9 {
				return false
			}
		}
		// Permutation invariance.
		var outs []ClientOut
		for i := 0; i < k; i++ {
			u := make([]float64, dim)
			for j := range u {
				u[j] = rng.NormFloat64()
			}
			outs = append(outs, mk(1+rng.Intn(9), u))
		}
		a := WeightedAverage(outs)
		perm := rng.Perm(k)
		shuffled := make([]ClientOut, k)
		for i, p := range perm {
			shuffled[i] = outs[p]
		}
		b := WeightedAverage(shuffled)
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: every sampler returns a valid cohort — distinct ids in range,
// of the configured size.
func TestQuickSamplersValidCohorts(t *testing.T) {
	f := tinyFederation(t, 12, 1.0, 0.25)
	poc := NewPowerOfChoiceSampler(2.5)
	for id := 0; id < 12; id++ {
		poc.Observe(id, float64(id))
	}
	check := func(seed int64) bool {
		for _, s := range []Sampler{UniformSampler{}, SizeWeightedSampler{}, poc} {
			cohort := s.Sample(f, int(seed%1000))
			if len(cohort) != 3 {
				return false
			}
			seen := map[int]bool{}
			for _, k := range cohort {
				if k < 0 || k >= 12 || seen[k] {
					return false
				}
				seen[k] = true
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// --- FedAvgM ---

func TestFedAvgMLearns(t *testing.T) {
	f := tinyFederation(t, 4, 0.0, 1.0)
	h := Run(f, NewFedAvgM(0.9), 8)
	if h.FinalAccuracy(2) < 0.5 {
		t.Fatalf("FedAvgM accuracy %v", h.FinalAccuracy(2))
	}
}

func TestFedAvgMZeroBetaMatchesFedAvg(t *testing.T) {
	fA := tinyFederation(t, 3, 0.0, 1.0)
	hA := Run(fA, NewFedAvg(), 3)
	fB := tinyFederation(t, 3, 0.0, 1.0)
	hB := Run(fB, NewFedAvgM(0), 3)
	for i := range hA.Rounds {
		if math.Abs(hA.Rounds[i].TrainLoss-hB.Rounds[i].TrainLoss) > 1e-12 {
			t.Fatalf("β=0 must reproduce FedAvg (round %d)", i)
		}
	}
}

func TestFedAvgMVelocityAccumulates(t *testing.T) {
	f := tinyFederation(t, 3, 0.0, 1.0)
	a := NewFedAvgM(0.9)
	Run(f, a, 2)
	norm := 0.0
	for _, v := range a.velocity {
		norm += v * v
	}
	if norm == 0 {
		t.Fatal("server momentum never accumulated")
	}
}
