package fl

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// These tests pin the simulation side of the observability layer: Run must
// emit the session → round → client_round → local_steps span tree and one
// ledger line per round, and the tracing hooks must not reintroduce
// allocations or measurable overhead into the training hot path.

type simSpan struct {
	Trace  string `json:"trace"`
	Span   string `json:"span"`
	Parent string `json:"parent"`
	Name   string `json:"name"`
	Round  *int   `json:"round"`
	Client *int   `json:"client"`
	DurNS  int64  `json:"dur_ns"`
}

func decodeSimSpans(t *testing.T, buf *bytes.Buffer) []simSpan {
	t.Helper()
	var spans []simSpan
	sc := bufio.NewScanner(buf)
	for sc.Scan() {
		var s simSpan
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("trace line %q: %v", sc.Text(), err)
		}
		spans = append(spans, s)
	}
	return spans
}

type simLedgerLine struct {
	Algo       string    `json:"algo"`
	Round      int       `json:"round"`
	Attempt    int       `json:"attempt"`
	OK         bool      `json:"ok"`
	Loss       *float64  `json:"loss"`
	DurNS      int64     `json:"dur_ns"`
	UpBytes    int64     `json:"up_bytes"`
	DownBytes  int64     `json:"down_bytes"`
	ClientID   []int     `json:"client_id"`
	ClientLoss []float64 `json:"client_loss"`
	ClientNorm []float64 `json:"client_norm"`
	MMDDim     int       `json:"mmd_dim"`
	MMD        []float64 `json:"mmd"`
}

func simFederation(t *testing.T, clients int, cfg Config) *Federation {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	shards := make([]*data.Dataset, clients)
	for i := range shards {
		shards[i] = allocTestDataset(rng, 96, 16, 4)
	}
	return NewFederation(cfg, shards, nil)
}

func TestRunEmitsTraceAndLedger(t *testing.T) {
	const clients, rounds = 3, 2
	var traceBuf, ledgerBuf bytes.Buffer
	cfg := Config{
		Builder: nn.NewMLP(16, 12, 8, 4), ModelSeed: 1, Seed: 2,
		LocalSteps: 2, BatchSize: 8, Workers: 2,
		Tracer: telemetry.NewTracer(&traceBuf),
		Ledger: telemetry.NewRunLedger(&ledgerBuf),
	}
	f := simFederation(t, clients, cfg)
	Run(f, NewFedAvg(), rounds)

	spans := decodeSimSpans(t, &traceBuf)
	byName := map[string][]simSpan{}
	byID := map[string]simSpan{}
	for _, s := range spans {
		byName[s.Name] = append(byName[s.Name], s)
		byID[s.Span] = s
	}
	if len(byName["session"]) != 1 {
		t.Fatalf("got %d session spans, want 1", len(byName["session"]))
	}
	root := byName["session"][0]
	for _, s := range spans {
		if s.Trace != root.Trace {
			t.Errorf("span %s in trace %q, want %q", s.Name, s.Trace, root.Trace)
		}
	}
	if len(byName["round"]) != rounds {
		t.Fatalf("got %d round spans, want %d", len(byName["round"]), rounds)
	}
	for _, r := range byName["round"] {
		if r.Parent != root.Span || r.Round == nil {
			t.Errorf("round span parent=%q round=%v", r.Parent, r.Round)
		}
	}
	if n := len(byName["client_round"]); n != rounds*clients {
		t.Errorf("got %d client_round spans, want %d", n, rounds*clients)
	}
	for _, s := range byName["client_round"] {
		if p, ok := byID[s.Parent]; !ok || p.Name != "round" {
			t.Errorf("client_round parents to %q, want a round span", s.Parent)
		}
		if s.Client == nil {
			t.Error("client_round span missing client attribute")
		}
	}
	if n := len(byName["local_steps"]); n != rounds*clients {
		t.Errorf("got %d local_steps spans, want %d", n, rounds*clients)
	}
	for _, s := range byName["local_steps"] {
		if p, ok := byID[s.Parent]; !ok || p.Name != "client_round" {
			t.Errorf("local_steps parents to %q, want a client_round span", s.Parent)
		}
	}

	sc := bufio.NewScanner(&ledgerBuf)
	var lines []simLedgerLine
	for sc.Scan() {
		var l simLedgerLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("ledger line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	if len(lines) != rounds {
		t.Fatalf("got %d ledger lines, want %d", len(lines), rounds)
	}
	for i, l := range lines {
		if l.Algo != "FedAvg" || l.Round != i || l.Attempt != 1 || !l.OK {
			t.Errorf("line %d identity: %+v", i, l)
		}
		if l.Loss == nil || *l.Loss <= 0 {
			t.Errorf("line %d loss = %v", i, l.Loss)
		}
		if l.DurNS <= 0 || l.UpBytes <= 0 || l.DownBytes <= 0 {
			t.Errorf("line %d dur/bytes: %+v", i, l)
		}
		if len(l.ClientID) != clients || len(l.ClientLoss) != clients || len(l.ClientNorm) != clients {
			t.Errorf("line %d client arrays: id=%d loss=%d norm=%d",
				i, len(l.ClientID), len(l.ClientLoss), len(l.ClientNorm))
		}
		for _, n := range l.ClientNorm {
			if n <= 0 {
				t.Errorf("line %d non-positive update norm %v", i, n)
			}
		}
		// FedAvg has no δ table; the MMD section must be absent.
		if l.MMDDim != 0 || len(l.MMD) != 0 {
			t.Errorf("line %d unexpected MMD section: dim=%d len=%d", i, l.MMDDim, len(l.MMD))
		}
	}
}

// TestLocalTrainTracedSteadyStateAllocs re-runs the zero-alloc contract with
// tracing enabled: the local_steps span plus a per-step feature-gradient
// span must add zero allocations once the tracer's buffer is sized.
func TestLocalTrainTracedSteadyStateAllocs(t *testing.T) {
	prev := tensor.SetKernelParallelism(1)
	defer tensor.SetKernelParallelism(prev)
	rng := rand.New(rand.NewSource(7))
	ds := allocTestDataset(rng, 256, 64, 10)
	cfg := Config{Builder: nn.NewMLP(64, 64, 32, 10), ModelSeed: 1, Seed: 2,
		LocalSteps: 1, BatchSize: 32, Workers: 1,
		Tracer: telemetry.NewTracer(io.Discard)}
	f := NewFederation(cfg, []*data.Dataset{ds}, nil)
	w, c := f.Worker(0), f.Clients[0]
	w.spanCtx = f.Cfg.Tracer.Start("client_round", telemetry.SpanContext{}).Context()
	trainRNG := rand.New(rand.NewSource(8))
	o := f.DefaultLocalOpts(0)
	// A no-op feature gradient exercises the per-step mmd_grad span without
	// pulling the regularizer (package core) into fl's tests.
	o.FeatGrad = func(feat *tensor.Tensor) *tensor.Tensor { return nil }
	for i := 0; i < 3; i++ {
		f.LocalTrain(w, c, trainRNG, o)
	}
	allocs := testing.AllocsPerRun(20, func() {
		f.LocalTrain(w, c, trainRNG, o)
	})
	if allocs != 0 {
		t.Errorf("traced train step: %.1f allocs/op, want 0", allocs)
	}
}

// TestTracingOverheadBounded pins the acceptance bound: tracing a dense
// local step must cost at most 5% wall time. Both configurations are timed
// as min-of-trials over identical work to shed scheduler noise.
func TestTracingOverheadBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	prev := tensor.SetKernelParallelism(1)
	defer tensor.SetKernelParallelism(prev)
	rng := rand.New(rand.NewSource(9))
	ds := allocTestDataset(rng, 512, 64, 10)

	timeIt := func(tracer *telemetry.Tracer) time.Duration {
		cfg := Config{Builder: nn.NewMLP(64, 64, 32, 10), ModelSeed: 1, Seed: 2,
			LocalSteps: 1, BatchSize: 32, Workers: 1, Tracer: tracer}
		f := NewFederation(cfg, []*data.Dataset{ds}, nil)
		w, c := f.Worker(0), f.Clients[0]
		w.spanCtx = tracer.Start("client_round", telemetry.SpanContext{}).Context()
		trainRNG := rand.New(rand.NewSource(10))
		o := f.DefaultLocalOpts(0)
		o.FeatGrad = func(feat *tensor.Tensor) *tensor.Tensor { return nil }
		for i := 0; i < 5; i++ { // warm arenas and tracer buffer
			f.LocalTrain(w, c, trainRNG, o)
		}
		best := time.Duration(1<<62 - 1)
		const iters = 100
		for trial := 0; trial < 7; trial++ {
			start := time.Now()
			for i := 0; i < iters; i++ {
				f.LocalTrain(w, c, trainRNG, o)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}

	base := timeIt(nil)
	traced := timeIt(telemetry.NewTracer(io.Discard))
	ratio := float64(traced) / float64(base)
	t.Logf("dense step: base=%v traced=%v ratio=%.3f", base, traced, ratio)
	if ratio > 1.05 {
		t.Errorf("tracing overhead %.1f%% exceeds the 5%% budget", (ratio-1)*100)
	}
}
