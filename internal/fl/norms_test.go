package fl

import (
	"math"
	"math/rand"
	"testing"
)

// Equivalence tests for the aggregation/norm paths rewired onto the SIMD
// kernels (UpdateNorms, WeightedAverage): each must agree with a private
// scalar reference within reassociation tolerance.

func TestUpdateNormsMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, dim := range []int{1, 7, 8, 33, 1000} {
		global := make([]float64, dim)
		for i := range global {
			global[i] = rng.NormFloat64()
		}
		outs := make([]ClientOut, 4)
		for c := range outs {
			p := make([]float64, dim)
			for i := range p {
				p[i] = rng.NormFloat64()
			}
			outs[c] = ClientOut{Client: &Client{ID: c}, Params: p}
		}
		outs[2].Params = nil // non-reporting client must be skipped

		got := UpdateNorms(global, outs)
		if _, ok := got[2]; ok {
			t.Fatal("UpdateNorms included a client with nil Params")
		}
		for c, o := range outs {
			if o.Params == nil {
				continue
			}
			s := 0.0
			for i, v := range o.Params {
				d := v - global[i]
				s += d * d
			}
			want := math.Sqrt(s)
			if math.Abs(got[c]-want) > 1e-12*float64(dim+1) {
				t.Fatalf("dim=%d client %d: norm %v vs scalar %v", dim, c, got[c], want)
			}
		}
	}
}

func TestWeightedAverageMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	dim := 513
	mk := func(id, n int) ClientOut {
		p := make([]float64, dim)
		for i := range p {
			p[i] = rng.NormFloat64()
		}
		ds := allocTestDataset(rng, n, 2, 2)
		return ClientOut{Client: &Client{ID: id, Data: ds}, Params: p}
	}
	outs := []ClientOut{mk(0, 10), mk(1, 25), mk(2, 5)}
	got := WeightedAverage(outs)

	want := make([]float64, dim)
	den := 0.0
	for _, o := range outs {
		n := float64(o.Client.Data.Len())
		for i, v := range o.Params {
			want[i] += n * v
		}
		den += n
	}
	for i := range want {
		want[i] /= den
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("index %d: %v vs scalar %v", i, got[i], want[i])
		}
	}
}
