package fl

import "math/rand"

// FedNova (Wang et al., NeurIPS 2020) fixes FedAvg's objective
// inconsistency when clients perform *different numbers of local steps*:
// each client reports its normalized update d_k = (w_global - w_k)/τ_k, and
// the server applies w ← w_global - τ_eff·Σ p_k·d_k with
// τ_eff = Σ p_k·τ_k. With homogeneous steps it reduces to FedAvg exactly.
//
// Here heterogeneity arises naturally from quantity skew: a client's local
// steps scale with its shard size, τ_k = max(1, round(E·n_k/n̄)).
type FedNova struct {
	// ProportionalSteps scales each client's step count with its shard
	// size; when false every client runs E steps (≡ FedAvg).
	ProportionalSteps bool

	f      *Federation
	global []float64
}

// NewFedNova creates the FedNova baseline with size-proportional local
// work.
func NewFedNova() *FedNova { return &FedNova{ProportionalSteps: true} }

// Name returns "FedNova".
func (a *FedNova) Name() string { return "FedNova" }

// Setup initializes the global model.
func (a *FedNova) Setup(f *Federation) {
	a.f = f
	a.global = f.InitialParams()
}

// GlobalParams returns the current global model.
func (a *FedNova) GlobalParams() []float64 { return a.global }

// LocalSteps returns τ_k for a client.
func (a *FedNova) LocalSteps(c *Client) int {
	e := a.f.Cfg.LocalSteps
	if !a.ProportionalSteps {
		return e
	}
	mean := 0.0
	for _, cl := range a.f.Clients {
		mean += float64(cl.Data.Len())
	}
	mean /= float64(len(a.f.Clients))
	tau := int(float64(e)*float64(c.Data.Len())/mean + 0.5)
	if tau < 1 {
		tau = 1
	}
	return tau
}

// Round runs one FedNova round.
func (a *FedNova) Round(round int, sampled []int) RoundResult {
	f := a.f
	global := a.global
	outs := f.MapClients(round, sampled, func(w *Worker, c *Client, rng *rand.Rand) ClientOut {
		w.LoadModel(global)
		o := f.DefaultLocalOpts(round)
		o.E = a.LocalSteps(c)
		loss := f.LocalTrain(w, c, rng, o)
		local := w.Net().GetFlat()
		// Normalized update d_k = (w_global - w_k)/τ_k.
		tau := float64(o.E)
		d := make([]float64, len(local))
		for i := range d {
			d[i] = (global[i] - local[i]) / tau
		}
		return ClientOut{Client: c, Params: d, Loss: loss, Aux: []float64{tau}}
	})

	// τ_eff = Σ p̃_k·τ_k over the cohort; w ← w - τ_eff·Σ p̃_k·d_k.
	den := 0.0
	for _, o := range outs {
		den += float64(o.Client.Data.Len())
	}
	tauEff := 0.0
	for _, o := range outs {
		pk := float64(o.Client.Data.Len()) / den
		tauEff += pk * o.Aux[0]
	}
	dbar := WeightedAverage(outs)
	for i := range a.global {
		a.global[i] -= tauEff * dbar[i]
	}

	p := int64(len(sampled))
	return RoundResult{
		TrainLoss:    MeanLoss(outs),
		ClientLosses: LossMap(outs),
		DownBytes:    p * PayloadBytes(f.NumParams()),
		UpBytes:      p * (PayloadBytes(f.NumParams()) + PayloadBytes(1)),
	}
}
