package fl

import "math/rand"

// FedAvgM is FedAvg with server-side momentum (Hsu et al., 2019): the
// server treats the averaged client delta as a pseudo-gradient and applies
// a momentum update, which damps the oscillations client drift causes on
// non-IID data. A cheap, widely used remedy worth having next to the
// paper's baselines.
type FedAvgM struct {
	// Beta is the server momentum coefficient (0.9 typical).
	Beta float64
	// ServerLR scales the update; 1.0 recovers plain averaging when
	// Beta = 0.
	ServerLR float64

	f        *Federation
	global   []float64
	velocity []float64
}

// NewFedAvgM creates FedAvg with server momentum β and server LR 1.
func NewFedAvgM(beta float64) *FedAvgM { return &FedAvgM{Beta: beta, ServerLR: 1} }

// Name returns "FedAvgM".
func (a *FedAvgM) Name() string { return "FedAvgM" }

// Setup initializes the global model and velocity.
func (a *FedAvgM) Setup(f *Federation) {
	a.f = f
	a.global = f.InitialParams()
	a.velocity = make([]float64, f.NumParams())
}

// GlobalParams returns the current global model.
func (a *FedAvgM) GlobalParams() []float64 { return a.global }

// Round runs one server-momentum round.
func (a *FedAvgM) Round(round int, sampled []int) RoundResult {
	f := a.f
	global := a.global
	outs := f.MapClients(round, sampled, func(w *Worker, c *Client, rng *rand.Rand) ClientOut {
		w.LoadModel(global)
		loss := f.LocalTrain(w, c, rng, f.DefaultLocalOpts(round))
		return ClientOut{Client: c, Params: w.Net().GetFlat(), Loss: loss}
	})
	avg := WeightedAverage(outs)
	// Pseudo-gradient d = w_global - w̄; v ← βv + d; w ← w - lr·v.
	for i := range a.global {
		d := a.global[i] - avg[i]
		a.velocity[i] = a.Beta*a.velocity[i] + d
		a.global[i] -= a.ServerLR * a.velocity[i]
	}
	p := int64(len(sampled))
	return RoundResult{
		TrainLoss:    MeanLoss(outs),
		ClientLosses: LossMap(outs),
		DownBytes:    p * PayloadBytes(f.NumParams()),
		UpBytes:      p * PayloadBytes(f.NumParams()),
	}
}
