package fl

import "repro/internal/telemetry"

// Process-wide training-progress counters on the default registry: local
// SGD steps and the samples they consumed, across every client and worker.
// Recorded once per LocalTrain call (two atomic adds), nothing per step.
var (
	localSteps = telemetry.Default().Counter("fl_local_steps_total",
		"local mini-batch SGD steps executed across all clients")
	trainSamples = telemetry.Default().Counter("fl_train_samples_total",
		"training samples consumed by local steps across all clients")
)
