package fl

import (
	"math"
	"sort"
	"sync"
)

// Sampler selects the participating cohort of a round. The paper samples
// uniformly (SR·N clients per round); its future-work section points at
// *adaptive participant selection*, which the non-uniform samplers here
// implement.
type Sampler interface {
	Name() string
	// Sample returns the client indices participating in the round.
	Sample(f *Federation, round int) []int
}

// LossObserver is implemented by samplers that adapt to client losses; Run
// feeds them each round's per-client training losses.
type LossObserver interface {
	Observe(clientID int, loss float64)
}

// UniformSampler draws ⌈SR·N⌉ distinct clients uniformly — FedAvg's
// default scheme and the paper's setting.
type UniformSampler struct{}

// Name returns "uniform".
func (UniformSampler) Name() string { return "uniform" }

// Sample draws the cohort uniformly without replacement.
func (UniformSampler) Sample(f *Federation, round int) []int {
	return f.uniformSample(round)
}

// SizeWeightedSampler draws clients with probability proportional to shard
// size (without replacement, Efraimidis–Spirakis weighted reservoir), so
// large data holders participate more often — the sampling scheme under
// which FedAvg's weighted aggregation is unbiased for quantity-skewed
// federations.
type SizeWeightedSampler struct{}

// Name returns "size-weighted".
func (SizeWeightedSampler) Name() string { return "size-weighted" }

// Sample draws the cohort with probability ∝ n_k.
func (SizeWeightedSampler) Sample(f *Federation, round int) []int {
	k := f.cohortSize()
	if k >= len(f.Clients) {
		return allClients(len(f.Clients))
	}
	rng := f.roundRNG(round, -1)
	type keyed struct {
		id  int
		key float64
	}
	keys := make([]keyed, len(f.Clients))
	for i, c := range f.Clients {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		keys[i] = keyed{id: i, key: math.Pow(u, 1/float64(c.Data.Len()))}
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a].key > keys[b].key })
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = keys[i].id
	}
	return out
}

// PowerOfChoiceSampler implements the loss-biased "power of choice"
// selection: draw a candidate set of CandidateFactor·cohort clients
// uniformly, then keep the ones with the highest last-observed training
// loss. Biasing rounds toward struggling clients speeds early convergence
// on non-IID data (Deng et al.; Wang et al., INFOCOM 2020).
type PowerOfChoiceSampler struct {
	// CandidateFactor multiplies the cohort size to get the candidate set
	// (the d of power-of-choice); values ≤ 1 degrade to uniform.
	CandidateFactor float64

	mu     sync.Mutex
	losses map[int]float64
}

// NewPowerOfChoiceSampler creates a loss-biased sampler with candidate
// factor d.
func NewPowerOfChoiceSampler(d float64) *PowerOfChoiceSampler {
	return &PowerOfChoiceSampler{CandidateFactor: d, losses: map[int]float64{}}
}

// Name returns "power-of-choice".
func (s *PowerOfChoiceSampler) Name() string { return "power-of-choice" }

// Observe records a client's latest training loss.
func (s *PowerOfChoiceSampler) Observe(clientID int, loss float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.losses[clientID] = loss
}

// lastLoss returns the client's last loss; unseen clients get +Inf so they
// are explored first.
func (s *PowerOfChoiceSampler) lastLoss(id int) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if l, ok := s.losses[id]; ok {
		return l
	}
	return math.Inf(1)
}

// Sample draws candidates uniformly and keeps the highest-loss ones.
func (s *PowerOfChoiceSampler) Sample(f *Federation, round int) []int {
	k := f.cohortSize()
	n := len(f.Clients)
	if k >= n {
		return allClients(n)
	}
	d := int(math.Ceil(s.CandidateFactor * float64(k)))
	if d < k {
		d = k
	}
	if d > n {
		d = n
	}
	rng := f.roundRNG(round, -1)
	candidates := rng.Perm(n)[:d]
	sort.Slice(candidates, func(a, b int) bool {
		la, lb := s.lastLoss(candidates[a]), s.lastLoss(candidates[b])
		if la == lb {
			return candidates[a] < candidates[b]
		}
		return la > lb
	})
	return append([]int(nil), candidates[:k]...)
}

func allClients(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
