package fl

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/tensor"
)

// tinyFederation builds a small, fast federation on SynthMNIST with an MLP,
// shared by the algorithm tests.
func tinyFederation(t *testing.T, clients int, similarity float64, sr float64) *Federation {
	t.Helper()
	train := data.SynthMNIST(600, 1)
	test := data.SynthMNIST(300, 2)
	rng := rand.New(rand.NewSource(3))
	parts := data.PartitionBySimilarity(train.Y, clients, similarity, rng)
	shards := make([]*data.Dataset, clients)
	for k, idx := range parts {
		shards[k] = train.Subset(idx)
	}
	cfg := Config{
		Builder:     nn.NewMLP(train.Features(), 32, 16, train.Classes),
		ModelSeed:   7,
		Seed:        11,
		LocalSteps:  5,
		BatchSize:   20,
		SampleRatio: sr,
		LR:          opt.ConstLR(0.1),
	}
	return NewFederation(cfg, shards, test)
}

func TestNewFederationWeights(t *testing.T) {
	f := tinyFederation(t, 4, 1.0, 1.0)
	sum := 0.0
	for _, c := range f.Clients {
		if c.Data.Len() == 0 {
			t.Fatal("empty client shard")
		}
		sum += c.Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v", sum)
	}
	if f.NumParams() <= 0 || f.FeatureDim() != 16 {
		t.Fatalf("NumParams=%d FeatureDim=%d", f.NumParams(), f.FeatureDim())
	}
}

func TestSampleClients(t *testing.T) {
	f := tinyFederation(t, 10, 1.0, 0.3)
	s := f.SampleClients(0)
	if len(s) != 3 {
		t.Fatalf("sampled %d clients, want 3", len(s))
	}
	seen := map[int]bool{}
	for _, k := range s {
		if k < 0 || k >= 10 || seen[k] {
			t.Fatalf("bad sample %v", s)
		}
		seen[k] = true
	}
	// Deterministic per round, different across rounds.
	s2 := f.SampleClients(0)
	for i := range s {
		if s[i] != s2[i] {
			t.Fatal("SampleClients must be deterministic per round")
		}
	}
	// Full participation returns everyone in order.
	ffull := tinyFederation(t, 5, 1.0, 1.0)
	all := ffull.SampleClients(3)
	if len(all) != 5 {
		t.Fatalf("full participation sampled %d", len(all))
	}
}

func TestWeightedAverage(t *testing.T) {
	mk := func(n int, vals ...float64) ClientOut {
		ds := &data.Dataset{X: tensor.New(n, 1), Y: make([]int, n), Classes: 2}
		return ClientOut{Client: &Client{Data: ds}, Params: vals}
	}
	got := WeightedAverage([]ClientOut{mk(1, 1, 10), mk(3, 5, 2)})
	// (1·1 + 3·5)/4 = 4 ; (1·10 + 3·2)/4 = 4
	if math.Abs(got[0]-4) > 1e-12 || math.Abs(got[1]-4) > 1e-12 {
		t.Fatalf("WeightedAverage = %v", got)
	}
	// Clients with nil params are skipped.
	got = WeightedAverage([]ClientOut{mk(1, 2, 2), {Client: &Client{Data: &data.Dataset{X: tensor.New(9, 1), Y: make([]int, 9), Classes: 2}}}})
	if got[0] != 2 || got[1] != 2 {
		t.Fatalf("nil-params client not skipped: %v", got)
	}
}

func TestMeanLoss(t *testing.T) {
	mk := func(n int, loss float64) ClientOut {
		ds := &data.Dataset{X: tensor.New(n, 1), Y: make([]int, n), Classes: 2}
		return ClientOut{Client: &Client{Data: ds}, Loss: loss}
	}
	got := MeanLoss([]ClientOut{mk(1, 1), mk(3, 5)})
	if math.Abs(got-4) > 1e-12 {
		t.Fatalf("MeanLoss = %v", got)
	}
}

func TestPayloadBytes(t *testing.T) {
	if PayloadBytes(0) != 24 || PayloadBytes(100) != 824 {
		t.Fatalf("PayloadBytes: %d, %d", PayloadBytes(0), PayloadBytes(100))
	}
}

func TestFedAvgLearnsIID(t *testing.T) {
	f := tinyFederation(t, 4, 1.0, 1.0)
	h := Run(f, NewFedAvg(), 8)
	if len(h.Rounds) != 8 {
		t.Fatalf("recorded %d rounds", len(h.Rounds))
	}
	first := h.Rounds[0].TestAcc
	last := h.FinalAccuracy(2)
	if !(last > first) || last < 0.6 {
		t.Fatalf("FedAvg did not learn: first %v, last %v", first, last)
	}
	up, down := h.TotalBytes()
	if up <= 0 || down <= 0 {
		t.Fatal("communication bytes not recorded")
	}
}

func TestRunIsDeterministic(t *testing.T) {
	h1 := Run(tinyFederation(t, 4, 0.0, 1.0), NewFedAvg(), 3)
	h2 := Run(tinyFederation(t, 4, 0.0, 1.0), NewFedAvg(), 3)
	for i := range h1.Rounds {
		if h1.Rounds[i].TrainLoss != h2.Rounds[i].TrainLoss {
			t.Fatalf("round %d losses differ: %v vs %v", i, h1.Rounds[i].TrainLoss, h2.Rounds[i].TrainLoss)
		}
		if h1.Rounds[i].TestAcc != h2.Rounds[i].TestAcc {
			t.Fatalf("round %d accs differ", i)
		}
	}
}

func TestFedAvgPartialParticipation(t *testing.T) {
	f := tinyFederation(t, 10, 1.0, 0.3)
	h := Run(f, NewFedAvg(), 10)
	if h.FinalAccuracy(2) < 0.5 {
		t.Fatalf("partial participation accuracy %v", h.FinalAccuracy(2))
	}
	// Bytes must reflect 3 sampled clients, not 10.
	per := PayloadBytes(f.NumParams())
	if h.Rounds[0].UpBytes != 3*per {
		t.Fatalf("up bytes %d, want %d", h.Rounds[0].UpBytes, 3*per)
	}
}

func TestFedProxRoundAndProxTermPullsTowardGlobal(t *testing.T) {
	f := tinyFederation(t, 4, 0.0, 1.0)
	// With a strong (but stable, μ·lr < 2) proximal pull the local models move less from the global model.
	prox := NewFedProx(10)
	prox.Setup(f)
	start := append([]float64(nil), prox.GlobalParams()...)
	prox.Round(0, f.SampleClients(0))
	afterHuge := prox.GlobalParams()
	driftHuge := 0.0
	for i := range start {
		d := afterHuge[i] - start[i]
		driftHuge += d * d
	}

	f2 := tinyFederation(t, 4, 0.0, 1.0)
	plain := NewFedProx(0) // μ=0 reduces to FedAvg-like drift
	plain.Setup(f2)
	plain.Round(0, f2.SampleClients(0))
	afterZero := plain.GlobalParams()
	driftZero := 0.0
	for i := range start {
		d := afterZero[i] - start[i]
		driftZero += d * d
	}
	if driftHuge >= driftZero {
		t.Fatalf("proximal term must damp drift: μ=10 drift %v, μ=0 drift %v", driftHuge, driftZero)
	}
}

func TestScaffoldLearnsAndMaintainsVariates(t *testing.T) {
	f := tinyFederation(t, 4, 0.0, 1.0)
	s := NewScaffold(1.0)
	h := Run(f, s, 8)
	if h.FinalAccuracy(2) < 0.5 {
		t.Fatalf("Scaffold accuracy %v", h.FinalAccuracy(2))
	}
	// Server control variate must be non-zero after rounds.
	norm := 0.0
	for _, v := range s.c {
		norm += v * v
	}
	if norm == 0 {
		t.Fatal("server control variate never updated")
	}
	if len(s.clientC) != 4 {
		t.Fatalf("client variates for %d clients, want 4", len(s.clientC))
	}
	// SCAFFOLD ships 2× the payload of FedAvg.
	if h.Rounds[0].UpBytes != 4*2*PayloadBytes(f.NumParams()) {
		t.Fatalf("Scaffold up bytes %d", h.Rounds[0].UpBytes)
	}
}

func TestQFedAvgLearns(t *testing.T) {
	f := tinyFederation(t, 4, 0.0, 1.0)
	h := Run(f, NewQFedAvg(1.0), 10)
	if h.FinalAccuracy(2) < 0.4 {
		t.Fatalf("q-FedAvg accuracy %v", h.FinalAccuracy(2))
	}
}

func TestQFedAvgQZeroTracksFedAvgDirection(t *testing.T) {
	// With q → 0 the q-FedAvg update is a Lipschitz-normalized average of
	// client deltas; it should decrease loss like FedAvg does.
	f := tinyFederation(t, 3, 1.0, 1.0)
	h := Run(f, NewQFedAvg(1e-9), 6)
	if h.Rounds[len(h.Rounds)-1].TrainLoss >= h.Rounds[0].TrainLoss {
		t.Fatalf("loss did not decrease: %v → %v", h.Rounds[0].TrainLoss, h.Rounds[len(h.Rounds)-1].TrainLoss)
	}
}

func TestEvaluatePerClient(t *testing.T) {
	f := tinyFederation(t, 5, 0.0, 1.0)
	a := NewFedAvg()
	h := Run(f, a, 5)
	_ = h
	accs := f.EvaluatePerClient(a.GlobalParams())
	if len(accs) != 5 {
		t.Fatalf("got %d client accuracies", len(accs))
	}
	for k, acc := range accs {
		if acc < 0 || acc > 1 {
			t.Fatalf("client %d accuracy %v", k, acc)
		}
	}
}

func TestEvalEverySkipsRounds(t *testing.T) {
	f := tinyFederation(t, 3, 1.0, 1.0)
	f.Cfg.EvalEvery = 3
	h := Run(f, NewFedAvg(), 7)
	evaluated := 0
	for _, r := range h.Rounds {
		if !math.IsNaN(r.TestAcc) {
			evaluated++
		}
	}
	// Rounds 2, 5 (every 3rd) and the final round 6.
	if evaluated != 3 {
		t.Fatalf("evaluated %d rounds, want 3", evaluated)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Workers <= 0 || c.EvalEvery != 1 || c.EvalBatch != 256 ||
		c.SampleRatio != 1 || c.LocalSteps != 1 || c.BatchSize != 32 {
		t.Fatalf("bad defaults: %+v", c)
	}
	if c.NewOptimizer == nil || c.LR == nil {
		t.Fatal("nil factories not defaulted")
	}
}

func TestLocalTrainDecreasesLoss(t *testing.T) {
	f := tinyFederation(t, 2, 1.0, 1.0)
	w := f.workers[0]
	c := f.Clients[0]
	w.LoadModel(f.InitialParams())
	rng := rand.New(rand.NewSource(1))
	o := f.DefaultLocalOpts(0)
	o.E = 30
	first := f.LocalTrain(w, c, rng, LocalOpts{Round: 0, E: 1, B: o.B, LR: o.LR})
	_ = f.LocalTrain(w, c, rng, o)
	last := f.LocalTrain(w, c, rng, LocalOpts{Round: 0, E: 1, B: o.B, LR: o.LR})
	if last >= first {
		t.Fatalf("local training did not reduce loss: %v → %v", first, last)
	}
}

func TestRMSPropLocalSolver(t *testing.T) {
	f := tinyFederation(t, 3, 1.0, 1.0)
	f.Cfg.NewOptimizer = func() opt.Optimizer { return opt.NewRMSProp() }
	f.Cfg.LR = opt.ConstLR(0.01)
	// Rebuild workers with the new optimizer factory.
	for _, w := range f.workers {
		w.localOpt = opt.NewRMSProp()
	}
	h := Run(f, NewFedAvg(), 6)
	if h.FinalAccuracy(2) < 0.5 {
		t.Fatalf("RMSProp federation accuracy %v", h.FinalAccuracy(2))
	}
}
