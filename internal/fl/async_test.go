package fl

import (
	"math"
	"testing"

	"repro/internal/data"
	"repro/internal/nn"
)

func TestStalenessWeight(t *testing.T) {
	cases := []struct {
		age    int
		lambda float64
		want   float64
	}{
		{0, 0.5, 1},
		{-3, 0.5, 1},
		{1, 0, 1},
		{2, -1, 1},
		{1, 1, 0.5},
		{3, 1, 0.25},
		{1, 0.5, 1 / math.Sqrt(2)},
	}
	for _, c := range cases {
		if got := StalenessWeight(c.age, c.lambda); math.Abs(got-c.want) > 1e-15 {
			t.Errorf("StalenessWeight(%d, %g) = %v, want %v", c.age, c.lambda, got, c.want)
		}
	}
	// Monotone: older updates never weigh more.
	prev := StalenessWeight(0, 0.5)
	for age := 1; age < 10; age++ {
		w := StalenessWeight(age, 0.5)
		if w > prev {
			t.Fatalf("weight increased with age: w(%d)=%v > w(%d)=%v", age, w, age-1, prev)
		}
		prev = w
	}
}

func newAsyncFederation(t *testing.T, clients int, cfg Config) *Federation {
	t.Helper()
	train := data.SynthMNIST(40*clients, 1)
	shards := make([]*data.Dataset, clients)
	per := train.Len() / clients
	for k := range shards {
		idx := make([]int, per)
		for j := range idx {
			idx[j] = k*per + j
		}
		shards[k] = train.Subset(idx)
	}
	cfg.Builder = nn.NewMLP(train.Features(), 8, 8, train.Classes)
	return NewFederation(cfg, shards, nil)
}

// fakeOuts builds one ClientOut per listed client with a recognizable
// constant parameter vector.
func fakeOuts(f *Federation, ids []int) []ClientOut {
	outs := make([]ClientOut, len(ids))
	for i, id := range ids {
		outs[i] = ClientOut{
			Client: f.Clients[id],
			Params: []float64{float64(id), float64(id) * 2},
			Loss:   float64(id) + 0.5,
		}
	}
	return outs
}

// With async off (or BufferK covering the cohort and nothing deferred),
// ApplyAsync is the identity: same outs, nil ages — and the stale-weighted
// reducers must then be bitwise-identical to their synchronous forms.
func TestApplyAsyncIdentityWhenNothingDeferred(t *testing.T) {
	f := newAsyncFederation(t, 4, Config{Async: true, BufferK: 0, Seed: 9})
	outs := fakeOuts(f, []int{0, 1, 2, 3})
	agg, ages := f.ApplyAsync(0, outs)
	if ages != nil {
		t.Fatalf("BufferK=0 deferred something: ages %v", ages)
	}
	if len(agg) != len(outs) {
		t.Fatalf("agg has %d entries, want %d", len(agg), len(outs))
	}

	sync := WeightedAverage(outs)
	stale := WeightedAverageStale(agg, ages, 0.7)
	for j := range sync {
		if math.Float64bits(sync[j]) != math.Float64bits(stale[j]) {
			t.Fatalf("nil-ages stale average diverges at %d: %v vs %v", j, stale[j], sync[j])
		}
	}
	if math.Float64bits(MeanLoss(outs)) != math.Float64bits(MeanLossStale(agg, ages, 0.7)) {
		t.Fatal("nil-ages stale mean loss diverges from MeanLoss")
	}
}

// BufferK keeps the K lowest-latency clients and defers the rest; the
// deferred updates fold into the next round with their age.
func TestApplyAsyncDefersAndFolds(t *testing.T) {
	f := newAsyncFederation(t, 4, Config{Async: true, BufferK: 2, Seed: 9, SlowFactor: []float64{1, 1, 20, 1}})

	agg0, ages0 := f.ApplyAsync(0, fakeOuts(f, []int{0, 1, 2, 3}))
	if len(agg0) != 2 {
		t.Fatalf("round 0 kept %d updates, want BufferK=2", len(agg0))
	}
	if ages0 != nil {
		for _, a := range ages0 {
			if a != 0 {
				t.Fatalf("round 0 ages %v, want all 0", ages0)
			}
		}
	}
	if got := f.AsyncDeferred(); got != 2 {
		t.Fatalf("deferred %d updates, want 2", got)
	}
	// Client 2's ×20 latency guarantees it was deferred.
	for _, o := range agg0 {
		if o.Client.ID == 2 {
			t.Fatal("slow client 2 made the round-0 buffer")
		}
	}

	// Deferred clients are busy: they drop out of later cohorts.
	busyFiltered := f.filterAsyncBusy([]int{0, 1, 2, 3})
	if len(busyFiltered) != 2 {
		t.Fatalf("busy filter kept %v, want the 2 non-deferred clients", busyFiltered)
	}

	// Round 1 over the remaining clients: the round-0 deferrals fold in at
	// age 1.
	agg1, ages1 := f.ApplyAsync(1, fakeOuts(f, busyFiltered))
	if f.AsyncDeferred() != 0 {
		t.Fatalf("folds did not drain: %d still deferred", f.AsyncDeferred())
	}
	if len(agg1) != 4 || len(ages1) != 4 {
		t.Fatalf("round 1 aggregated %d updates with %d ages, want 4 and 4", len(agg1), len(ages1))
	}
	folded := 0
	for i, o := range agg1 {
		if ages1[i] == 1 {
			folded++
			if contains(busyFiltered, o.Client.ID) {
				t.Fatalf("client %d is both fresh and folded", o.Client.ID)
			}
		}
	}
	if folded != 2 {
		t.Fatalf("round 1 folded %d aged updates, want 2", folded)
	}

	// The aged entries must be discounted: recompute the weighted average by
	// hand and compare.
	got := WeightedAverageStale(agg1, ages1, 1.0)
	var want []float64
	den := 0.0
	for i, o := range agg1 {
		w := float64(o.Client.Data.Len()) * StalenessWeight(ages1[i], 1.0)
		if want == nil {
			want = make([]float64, len(o.Params))
		}
		for j := range o.Params {
			want[j] += w * o.Params[j]
		}
		den += w
	}
	for j := range want {
		want[j] /= den
	}
	for j := range want {
		if math.Abs(got[j]-want[j]) > 1e-12 {
			t.Fatalf("stale average[%d] = %v, want %v", j, got[j], want[j])
		}
	}
}

// The latency model is a pure function of (seed, round, client): the same
// configuration defers the same clients every time.
func TestApplyAsyncDeterministic(t *testing.T) {
	pick := func() []int {
		f := newAsyncFederation(t, 6, Config{Async: true, BufferK: 3, Seed: 42})
		agg, _ := f.ApplyAsync(0, fakeOuts(f, []int{0, 1, 2, 3, 4, 5}))
		var ids []int
		for _, o := range agg {
			ids = append(ids, o.Client.ID)
		}
		return ids
	}
	a, b := pick(), pick()
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("kept %d and %d updates, want 3", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("two identical runs kept different clients: %v vs %v", a, b)
		}
	}
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
