package compress

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
)

// Scheme names one of the fixed wire codecs the transport can negotiate per
// payload class. Unlike the Compressor interface (whose payloads are opaque
// Go values), a Scheme has a self-describing byte encoding: any peer that
// knows the scheme tag and the original element count can decode the
// payload, which is what lets the frame codec validate lengths before
// allocating.
type Scheme uint8

// The negotiable wire schemes, in caps-bitmask order. Dense is the zero
// value, so an un-negotiated or unknown peer degrades to raw float64.
const (
	// SchemeDense ships raw float64 (8 bytes/coord) — lossless.
	SchemeDense Scheme = iota
	// SchemeF32 rounds to float32 (4 bytes/coord).
	SchemeF32
	// SchemeInt8 is QSGD-style stochastic quantization onto the ±127 grid
	// scaled by max|v|: one float32 scale plus one int8 per coordinate.
	// Unbiased given the caller's RNG.
	SchemeInt8
	// SchemeBit1 is 1-bit sign quantization scaled by mean|v|: one float32
	// scale plus one sign bit per coordinate. Deterministic and biased;
	// pair it with error feedback.
	SchemeBit1

	numSchemes
)

// NumSchemes is the number of defined schemes, for per-scheme metric arrays.
const NumSchemes = int(numSchemes)

// Valid reports whether s names a defined scheme.
func (s Scheme) Valid() bool { return s < numSchemes }

// String returns the scheme's canonical name ("dense", "f32", "q8", "q1").
func (s Scheme) String() string {
	switch s {
	case SchemeDense:
		return "dense"
	case SchemeF32:
		return "f32"
	case SchemeInt8:
		return "q8"
	case SchemeBit1:
		return "q1"
	default:
		return fmt.Sprintf("scheme(%d)", uint8(s))
	}
}

// ParseScheme resolves a scheme name (canonical or alias) from a flag value.
func ParseScheme(name string) (Scheme, error) {
	switch name {
	case "", "dense", "none", "identity":
		return SchemeDense, nil
	case "f32", "float32":
		return SchemeF32, nil
	case "q8", "int8":
		return SchemeInt8, nil
	case "q1", "1bit", "sign":
		return SchemeBit1, nil
	default:
		return SchemeDense, fmt.Errorf("compress: unknown scheme %q (want dense, f32, q8, or q1)", name)
	}
}

// Caps is a bitmask of supported schemes, advertised in the join handshake.
// Dense is always implied: even a zero Caps can receive raw float64.
type Caps uint32

// AllCaps advertises every scheme this build knows.
func AllCaps() Caps { return Caps(1)<<numSchemes - 1 }

// CapsOf builds a mask from explicit schemes (dense is always included).
func CapsOf(schemes ...Scheme) Caps {
	c := Caps(1) << SchemeDense
	for _, s := range schemes {
		if s.Valid() {
			c |= Caps(1) << s
		}
	}
	return c
}

// Has reports whether s is usable against a peer with these caps. Unknown
// bits a newer peer may set are ignored; dense always holds.
func (c Caps) Has(s Scheme) bool {
	if s == SchemeDense {
		return true
	}
	return s.Valid() && c&(Caps(1)<<s) != 0
}

// Negotiate picks the scheme for one payload class: the preferred scheme
// when the peer advertised it, dense otherwise (including when preferred is
// itself unknown — a config from a newer build degrades, never errors).
func Negotiate(preferred Scheme, peer Caps) Scheme {
	if preferred.Valid() && peer.Has(preferred) {
		return preferred
	}
	return SchemeDense
}

// EncodedBytes is the exact wire size of an n-element payload under s.
// Frame validation relies on it being an injective function of (s, n) per
// scheme, so a forged header cannot claim a longer buffer than the element
// count justifies.
func EncodedBytes(s Scheme, n int) int {
	switch s {
	case SchemeDense:
		return 8 * n
	case SchemeF32:
		return 4 * n
	case SchemeInt8:
		return 4 + n
	case SchemeBit1:
		return 4 + (n+7)/8
	default:
		panic(fmt.Sprintf("compress: EncodedBytes of invalid scheme %d", s))
	}
}

// EncodeInto encodes v into dst, which must be exactly EncodedBytes(s,
// len(v)) long. rng drives stochastic rounding (SchemeInt8) and may be nil
// for the deterministic schemes. It allocates nothing.
func EncodeInto(s Scheme, dst []byte, v []float64, rng *rand.Rand) {
	if want := EncodedBytes(s, len(v)); len(dst) != want {
		panic(fmt.Sprintf("compress: EncodeInto dst has %d bytes, want %d", len(dst), want))
	}
	switch s {
	case SchemeDense:
		for i, x := range v {
			binary.LittleEndian.PutUint64(dst[8*i:], math.Float64bits(x))
		}
	case SchemeF32:
		for i, x := range v {
			binary.LittleEndian.PutUint32(dst[4*i:], math.Float32bits(float32(x)))
		}
	case SchemeInt8:
		maxAbs := 0.0
		for _, x := range v {
			if a := math.Abs(x); a > maxAbs {
				maxAbs = a
			}
		}
		// The scale is stored as float32 and decoded back through the same
		// rounding, so encode against the decoded value to stay unbiased. A
		// degenerate scale (zero or non-finite input) is stored as 0 so the
		// peer reconstructs zeros instead of NaNs.
		scale := float64(float32(maxAbs))
		if scale == 0 || math.IsInf(scale, 0) || math.IsNaN(scale) {
			binary.LittleEndian.PutUint32(dst, 0)
			for i := range v {
				dst[4+i] = 0
			}
			return
		}
		binary.LittleEndian.PutUint32(dst, math.Float32bits(float32(maxAbs)))
		for i, x := range v {
			t := x / scale * 127
			lo := math.Floor(t)
			q := int64(lo)
			if rng.Float64() < t-lo {
				q++
			}
			if q > 127 {
				q = 127
			} else if q < -127 {
				q = -127
			}
			dst[4+i] = byte(int8(q))
		}
	case SchemeBit1:
		sum := 0.0
		for _, x := range v {
			sum += math.Abs(x)
		}
		scale := 0.0
		if len(v) > 0 {
			scale = sum / float64(len(v))
		}
		if math.IsInf(scale, 0) || math.IsNaN(scale) {
			scale = 0
		}
		binary.LittleEndian.PutUint32(dst, math.Float32bits(float32(scale)))
		for i := 4; i < len(dst); i++ {
			dst[i] = 0
		}
		for i, x := range v {
			if x >= 0 {
				dst[4+i/8] |= 1 << (i % 8)
			}
		}
	default:
		panic(fmt.Sprintf("compress: EncodeInto with invalid scheme %d", s))
	}
}

// DecodeInto decodes an s-encoded payload into dst, whose length must be
// the original element count. It returns an error (instead of panicking) on
// a size mismatch, because it sits on the wire path where src arrives from
// an untrusted peer. It allocates nothing.
func DecodeInto(dst []float64, s Scheme, src []byte) error {
	if !s.Valid() {
		return fmt.Errorf("compress: decode with invalid scheme %d", s)
	}
	if want := EncodedBytes(s, len(dst)); len(src) != want {
		return fmt.Errorf("compress: %s payload has %d bytes, want %d for %d values",
			s, len(src), want, len(dst))
	}
	switch s {
	case SchemeDense:
		for i := range dst {
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[8*i:]))
		}
	case SchemeF32:
		for i := range dst {
			dst[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(src[4*i:])))
		}
	case SchemeInt8:
		scale := float64(math.Float32frombits(binary.LittleEndian.Uint32(src)))
		for i := range dst {
			dst[i] = float64(int8(src[4+i])) / 127 * scale
		}
	case SchemeBit1:
		scale := float64(math.Float32frombits(binary.LittleEndian.Uint32(src)))
		for i := range dst {
			if src[4+i/8]&(1<<(i%8)) != 0 {
				dst[i] = scale
			} else {
				dst[i] = -scale
			}
		}
	}
	return nil
}

// RNG derives the compressor's stochastic-rounding stream for one
// (seed, round, client) triple — the same keying family as fl.roundRNG and
// the transport's cohortRNG, so stochastic quantization reproduces bitwise
// across kill-and-resume and round retries instead of consuming a
// session-long sequential stream.
func RNG(seed int64, round, client int) *rand.Rand {
	return rand.New(rand.NewSource(seed*1_000_003 + int64(round)*7919 + int64(client+1)*104729 + 7))
}

// RelError returns the relative L2 reconstruction error ‖v − recon‖/‖v‖
// (0 for a zero input), the quantity the compression telemetry histograms.
func RelError(v, recon []float64) float64 {
	num, den := 0.0, 0.0
	for i := range v {
		d := v[i] - recon[i]
		num += d * d
		den += v[i] * v[i]
	}
	if den == 0 {
		return 0
	}
	return math.Sqrt(num / den)
}
