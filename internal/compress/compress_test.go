package compress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestIdentityRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := randVec(rng, 50)
	p := Identity{}.Compress(v, rng)
	back := p.Decompress(50)
	for i := range v {
		if back[i] != v[i] {
			t.Fatal("identity must be exact")
		}
	}
	if p.Bytes() != 400 {
		t.Fatalf("identity bytes = %d", p.Bytes())
	}
}

func TestQuantizerUnbiased(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	q := NewQuantizer(4)
	v := []float64{0.3, -0.7, 1.0, 0.05, -0.001}
	const trials = 20000
	sum := make([]float64, len(v))
	for trial := 0; trial < trials; trial++ {
		back := q.Compress(v, rng).Decompress(len(v))
		for i, x := range back {
			sum[i] += x
		}
	}
	for i := range v {
		mean := sum[i] / trials
		if math.Abs(mean-v[i]) > 0.01 {
			t.Fatalf("coordinate %d: E[q(v)] = %v, want %v", i, mean, v[i])
		}
	}
}

func TestQuantizerErrorShrinksWithBits(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v := randVec(rng, 500)
	mse := func(bits uint) float64 {
		back := NewQuantizer(bits).Compress(v, rng).Decompress(len(v))
		s := 0.0
		for i := range v {
			d := back[i] - v[i]
			s += d * d
		}
		return s / float64(len(v))
	}
	if e2, e8 := mse(2), mse(8); e8 >= e2 {
		t.Fatalf("8-bit MSE %v should beat 2-bit %v", e8, e2)
	}
}

func TestQuantizerBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	v := randVec(rng, 100)
	p8 := NewQuantizer(8).Compress(v, rng)
	// 9 bits/coord packed + 4-byte scale = ceil(900/8)+4 = 117.
	if p8.Bytes() != 117 {
		t.Fatalf("8-bit payload bytes = %d, want 117", p8.Bytes())
	}
	if p8.Bytes() >= Identity.Compress(Identity{}, v, rng).Bytes() {
		t.Fatal("quantized payload should be smaller than dense")
	}
}

func TestQuantizerZeroVector(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	back := NewQuantizer(8).Compress(make([]float64, 10), rng).Decompress(10)
	for _, x := range back {
		if x != 0 {
			t.Fatal("zero vector must survive quantization")
		}
	}
}

func TestQuantizerRejectsBadBits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 0 bits")
		}
	}()
	NewQuantizer(0)
}

func TestTopKKeepsLargest(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	v := []float64{0.1, -5, 0.2, 3, -0.05, 4}
	back := NewTopK(3).Compress(v, rng).Decompress(len(v))
	want := []float64{0, -5, 0, 3, 0, 4}
	for i := range want {
		if back[i] != want[i] {
			t.Fatalf("top-3 = %v, want %v", back, want)
		}
	}
}

func TestTopKLargerThanInput(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	v := []float64{1, 2}
	back := NewTopK(10).Compress(v, rng).Decompress(2)
	if back[0] != 1 || back[1] != 2 {
		t.Fatalf("k > n must be exact: %v", back)
	}
}

func TestTopKBytesScaleWithK(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	v := randVec(rng, 1000)
	b10 := NewTopK(10).Compress(v, rng).Bytes()
	b100 := NewTopK(100).Compress(v, rng).Bytes()
	if b100 <= b10 || b100 >= 8*1000 {
		t.Fatalf("bytes: k=10 → %d, k=100 → %d", b10, b100)
	}
}

func TestCountSketchRecoversSparseSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// Sparse heavy hitters are the sketch's use case.
	v := make([]float64, 2000)
	v[17], v[900], v[1500] = 10, -7, 4
	cs := NewCountSketch(5, 256, 1)
	back := cs.Compress(v, rng).Decompress(len(v))
	for _, i := range []int{17, 900, 1500} {
		if math.Abs(back[i]-v[i]) > 1 {
			t.Fatalf("heavy hitter %d recovered as %v, want %v", i, back[i], v[i])
		}
	}
	// Mass elsewhere should be small.
	noise := 0.0
	for i, x := range back {
		if i != 17 && i != 900 && i != 1500 {
			noise += math.Abs(x)
		}
	}
	if noise/float64(len(v)) > 0.5 {
		t.Fatalf("sketch noise floor too high: %v", noise/float64(len(v)))
	}
}

func TestCountSketchLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	cs := NewCountSketch(5, 128, 2)
	a, b := randVec(rng, 500), randVec(rng, 500)
	pa := cs.Compress(a, rng).(*sketchPayload)
	pb := cs.Compress(b, rng)
	if err := pa.Merge(pb); err != nil {
		t.Fatal(err)
	}
	sum := make([]float64, 500)
	for i := range sum {
		sum[i] = a[i] + b[i]
	}
	direct := cs.Compress(sum, rng).(*sketchPayload)
	for i := range pa.table {
		if math.Abs(pa.table[i]-direct.table[i]) > 1e-9 {
			t.Fatal("sketch must be linear: merge != sketch of sum")
		}
	}
}

func TestCountSketchMergeRejectsMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := NewCountSketch(3, 64, 1).Compress(randVec(rng, 10), rng).(*sketchPayload)
	b := NewCountSketch(3, 32, 1).Compress(randVec(rng, 10), rng)
	if err := a.Merge(b); err == nil {
		t.Fatal("mismatched sketch merge accepted")
	}
	if err := a.Merge(&densePayload{v: []float64{1}}); err == nil {
		t.Fatal("cross-type merge accepted")
	}
}

func TestCountSketchBytesIndependentOfDim(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	cs := NewCountSketch(5, 100, 3)
	small := cs.Compress(randVec(rng, 10), rng).Bytes()
	big := cs.Compress(randVec(rng, 10000), rng).Bytes()
	if small != big || small != 5*100*8 {
		t.Fatalf("sketch bytes: %d vs %d, want %d", small, big, 5*100*8)
	}
}

func TestNames(t *testing.T) {
	if Identity.Name(Identity{}) != "identity" ||
		NewQuantizer(8).Name() != "q8" ||
		NewTopK(64).Name() != "top64" ||
		NewCountSketch(5, 256, 1).Name() != "sketch5x256" {
		t.Fatal("compressor names")
	}
}

// Property: every compressor's round trip preserves vector length and
// produces finite values, and the decompressed top-k support is a subset of
// the original support.
func TestQuickCompressorSanity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		v := randVec(rng, n)
		for _, c := range []Compressor{Identity{}, NewQuantizer(6), NewTopK(1 + n/4), NewCountSketch(3, 64, seed)} {
			back := c.Compress(v, rng).Decompress(n)
			if len(back) != n {
				return false
			}
			for _, x := range back {
				if math.IsNaN(x) || math.IsInf(x, 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: kthLargest agrees with a sort-based definition.
func TestQuickKthLargest(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		k := 1 + rng.Intn(n)
		v := randVec(rng, n)
		cp := append([]float64(nil), v...)
		got := kthLargest(cp, k)
		// count how many are >= got: should be ≥ k, and count > got < k
		ge, gt := 0, 0
		for _, x := range v {
			if x >= got {
				ge++
			}
			if x > got {
				gt++
			}
		}
		return ge >= k && gt < k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
