package compress

import (
	"fmt"
	"math/rand"
)

// CountSketch compresses a vector into an R×W sketch of counters
// (FetchSGD-style): each coordinate is hashed into one counter per row with
// a random sign, and recovered by the median of its signed counters. The
// sketch is linear, so sketches of client updates can be averaged at the
// server before decompression.
type CountSketch struct {
	Rows, Width int
	Seed        int64
}

// NewCountSketch creates a sketch compressor. Memory/wire cost is
// Rows·Width float64 values regardless of the input dimension.
func NewCountSketch(rows, width int, seed int64) CountSketch {
	if rows < 1 || width < 1 {
		panic(fmt.Sprintf("compress: invalid sketch %dx%d", rows, width))
	}
	return CountSketch{Rows: rows, Width: width, Seed: seed}
}

// Name returns e.g. "sketch5x256".
func (c CountSketch) Name() string { return fmt.Sprintf("sketch%dx%d", c.Rows, c.Width) }

// hash maps (row, index) deterministically to (bucket, sign). A multiply-
// xorshift mix keyed by the sketch seed gives the pairwise independence the
// estimator needs in practice.
func (c CountSketch) hash(row, i int) (bucket int, sign float64) {
	x := uint64(i)*0x9E3779B97F4A7C15 + uint64(row)*0xBF58476D1CE4E5B9 + uint64(c.Seed)*0x94D049BB133111EB
	x ^= x >> 31
	x *= 0xD6E8FEB86659FD93
	x ^= x >> 27
	bucket = int(x % uint64(c.Width))
	if (x>>63)&1 == 1 {
		return bucket, -1
	}
	return bucket, 1
}

// Compress sketches v.
func (c CountSketch) Compress(v []float64, rng *rand.Rand) Payload {
	return c.CompressReuse(nil, v, rng)
}

// CompressReuse is Compress reusing prev's counter table when it was built
// by a sketch of the same configuration.
func (c CountSketch) CompressReuse(prev Payload, v []float64, rng *rand.Rand) Payload {
	p, ok := prev.(*sketchPayload)
	if !ok || len(p.table) != c.Rows*c.Width {
		p = &sketchPayload{table: make([]float64, c.Rows*c.Width)}
	} else {
		for i := range p.table {
			p.table[i] = 0
		}
	}
	p.cfg = c
	for i, x := range v {
		if x == 0 {
			continue
		}
		for r := 0; r < c.Rows; r++ {
			b, s := c.hash(r, i)
			p.table[r*c.Width+b] += s * x
		}
	}
	return p
}

type sketchPayload struct {
	cfg   CountSketch
	table []float64
	est   []float64 // median scratch, not part of the wire payload
}

// Decompress estimates each coordinate as the median of its signed
// counters.
func (p *sketchPayload) Decompress(n int) []float64 {
	out := make([]float64, n)
	p.DecompressInto(out)
	return out
}

// DecompressInto estimates into dst without allocating.
func (p *sketchPayload) DecompressInto(dst []float64) {
	if cap(p.est) < 2*p.cfg.Rows {
		p.est = make([]float64, 2*p.cfg.Rows)
	}
	est, buf := p.est[:p.cfg.Rows], p.est[p.cfg.Rows:2*p.cfg.Rows]
	for i := range dst {
		for r := 0; r < p.cfg.Rows; r++ {
			b, s := p.cfg.hash(r, i)
			est[r] = s * p.table[r*p.cfg.Width+b]
		}
		dst[i] = medianInto(buf, est)
	}
}

func (p *sketchPayload) Bytes() int64 { return int64(8 * len(p.table)) }

// Merge adds another sketch with the same configuration into p (linearity),
// enabling server-side aggregation in sketch space.
func (p *sketchPayload) Merge(other Payload) error {
	o, ok := other.(*sketchPayload)
	if !ok || o.cfg != p.cfg {
		return fmt.Errorf("compress: cannot merge mismatched sketches")
	}
	for i, v := range o.table {
		p.table[i] += v
	}
	return nil
}

func medianOf(xs []float64) float64 {
	return medianInto(make([]float64, len(xs)), xs)
}

func medianInto(buf, xs []float64) float64 {
	// Insertion sort on a copy in buf: R is tiny (3–7).
	buf = buf[:len(xs)]
	copy(buf, xs)
	for i := 1; i < len(buf); i++ {
		for j := i; j > 0 && buf[j] < buf[j-1]; j-- {
			buf[j], buf[j-1] = buf[j-1], buf[j]
		}
	}
	return buf[len(buf)/2]
}
