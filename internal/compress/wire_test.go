package compress

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func TestSchemeStringsAndParse(t *testing.T) {
	for _, tc := range []struct {
		name string
		want Scheme
	}{
		{"", SchemeDense}, {"dense", SchemeDense}, {"none", SchemeDense}, {"identity", SchemeDense},
		{"f32", SchemeF32}, {"float32", SchemeF32},
		{"q8", SchemeInt8}, {"int8", SchemeInt8},
		{"q1", SchemeBit1}, {"1bit", SchemeBit1}, {"sign", SchemeBit1},
	} {
		got, err := ParseScheme(tc.name)
		if err != nil || got != tc.want {
			t.Fatalf("ParseScheme(%q) = %v, %v; want %v", tc.name, got, err, tc.want)
		}
	}
	if _, err := ParseScheme("zstd"); err == nil {
		t.Fatal("unknown scheme name must error")
	}
	// Round trip through String for every valid scheme.
	for s := SchemeDense; s < numSchemes; s++ {
		got, err := ParseScheme(s.String())
		if err != nil || got != s {
			t.Fatalf("ParseScheme(%v.String()) = %v, %v", s, got, err)
		}
	}
	if Scheme(200).Valid() {
		t.Fatal("scheme 200 must be invalid")
	}
}

func TestCapsAndNegotiate(t *testing.T) {
	all := AllCaps()
	for s := SchemeDense; s < numSchemes; s++ {
		if !all.Has(s) {
			t.Fatalf("AllCaps missing %v", s)
		}
		if got := Negotiate(s, all); got != s {
			t.Fatalf("Negotiate(%v, all) = %v", s, got)
		}
	}
	// Dense is always implied, even by a zero mask.
	var none Caps
	if !none.Has(SchemeDense) {
		t.Fatal("dense must always be supported")
	}
	if got := Negotiate(SchemeInt8, none); got != SchemeDense {
		t.Fatalf("Negotiate against empty caps = %v, want dense", got)
	}
	// A restricted peer only yields what it advertised.
	caps := CapsOf(SchemeInt8)
	if !caps.Has(SchemeInt8) || caps.Has(SchemeBit1) || caps.Has(SchemeF32) {
		t.Fatalf("CapsOf(q8) = %b", caps)
	}
	if got := Negotiate(SchemeBit1, caps); got != SchemeDense {
		t.Fatalf("Negotiate(q1, caps{q8}) = %v, want dense", got)
	}
	// Unknown future bits and unknown preferred schemes degrade to dense.
	future := Caps(1) << 17
	if future.Has(Scheme(17)) {
		t.Fatal("unknown scheme bit must not validate")
	}
	if got := Negotiate(Scheme(17), all|future); got != SchemeDense {
		t.Fatalf("Negotiate(unknown, ...) = %v, want dense", got)
	}
}

func TestEncodedBytesPerScheme(t *testing.T) {
	for _, tc := range []struct {
		s    Scheme
		n    int
		want int
	}{
		{SchemeDense, 100, 800},
		{SchemeF32, 100, 400},
		{SchemeInt8, 100, 104},
		{SchemeBit1, 100, 4 + 13},
		{SchemeBit1, 0, 4},
		{SchemeDense, 0, 0},
	} {
		if got := EncodedBytes(tc.s, tc.n); got != tc.want {
			t.Fatalf("EncodedBytes(%v, %d) = %d, want %d", tc.s, tc.n, got, tc.want)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	v := randVec(rng, 257) // odd length exercises the bit1 tail byte
	for s := SchemeDense; s < numSchemes; s++ {
		dst := make([]byte, EncodedBytes(s, len(v)))
		EncodeInto(s, dst, v, rng)
		back := make([]float64, len(v))
		if err := DecodeInto(back, s, dst); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		switch s {
		case SchemeDense:
			for i := range v {
				if back[i] != v[i] {
					t.Fatal("dense must be exact")
				}
			}
		case SchemeF32:
			for i := range v {
				if back[i] != float64(float32(v[i])) {
					t.Fatal("f32 must round-trip through float32")
				}
			}
		default:
			if rel := RelError(v, back); rel <= 0 || rel > 2 {
				t.Fatalf("%v: relative error %v out of range", s, rel)
			}
		}
	}
}

func TestEncodeInt8Unbiased(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	v := []float64{0.3, -0.7, 1.0, 0.05, -0.001}
	dst := make([]byte, EncodedBytes(SchemeInt8, len(v)))
	back := make([]float64, len(v))
	sum := make([]float64, len(v))
	const trials = 20000
	for trial := 0; trial < trials; trial++ {
		EncodeInto(SchemeInt8, dst, v, rng)
		if err := DecodeInto(back, SchemeInt8, dst); err != nil {
			t.Fatal(err)
		}
		for i, x := range back {
			sum[i] += x
		}
	}
	for i := range v {
		if mean := sum[i] / trials; math.Abs(mean-v[i]) > 0.005 {
			t.Fatalf("coordinate %d: E[decode(encode(v))] = %v, want %v", i, mean, v[i])
		}
	}
}

func TestEncodeZeroAndNonFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	zero := make([]float64, 16)
	back := make([]float64, 16)
	for _, s := range []Scheme{SchemeInt8, SchemeBit1} {
		dst := make([]byte, EncodedBytes(s, len(zero)))
		EncodeInto(s, dst, zero, rng)
		if err := DecodeInto(back, s, dst); err != nil {
			t.Fatal(err)
		}
		for _, x := range back {
			if x != 0 {
				t.Fatalf("%v: zero vector must survive, got %v", s, back)
			}
		}
	}
	// A non-finite coordinate must not poison the int8 grid.
	inf := []float64{1, math.Inf(1), -2}
	dst := make([]byte, EncodedBytes(SchemeInt8, len(inf)))
	EncodeInto(SchemeInt8, dst, inf, rng)
	back = back[:len(inf)]
	if err := DecodeInto(back, SchemeInt8, dst); err != nil {
		t.Fatal(err)
	}
	for _, x := range back {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatalf("int8 decode of non-finite input produced %v", back)
		}
	}
}

func TestDecodeIntoRejectsBadSizes(t *testing.T) {
	dst := make([]float64, 10)
	if err := DecodeInto(dst, SchemeInt8, make([]byte, 5)); err == nil {
		t.Fatal("short int8 payload accepted")
	}
	if err := DecodeInto(dst, SchemeDense, make([]byte, 81)); err == nil {
		t.Fatal("oversized dense payload accepted")
	}
	if err := DecodeInto(dst, Scheme(99), make([]byte, 80)); err == nil {
		t.Fatal("invalid scheme accepted")
	}
}

// The compressor RNG is keyed per (seed, round, client): same key → bitwise
// identical stochastic quantization; different key in any component → a
// different stream. This is what makes compressed kill-and-resume bitwise
// reproducible.
func TestRNGKeyedDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	v := randVec(rng, 512)
	enc := func(seed int64, round, client int) []byte {
		dst := make([]byte, EncodedBytes(SchemeInt8, len(v)))
		EncodeInto(SchemeInt8, dst, v, RNG(seed, round, client))
		return dst
	}
	a, b := enc(5, 3, 2), enc(5, 3, 2)
	if !bytes.Equal(a, b) {
		t.Fatal("same (seed, round, client) must quantize bitwise identically")
	}
	for _, other := range [][3]int64{{6, 3, 2}, {5, 4, 2}, {5, 3, 1}} {
		if bytes.Equal(a, enc(other[0], int(other[1]), int(other[2]))) {
			t.Fatalf("key %v must yield a different stream", other)
		}
	}
}

func TestRelError(t *testing.T) {
	v := []float64{3, 4}
	if got := RelError(v, []float64{3, 4}); got != 0 {
		t.Fatalf("exact reconstruction rel error = %v", got)
	}
	if got := RelError(v, []float64{0, 0}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("zero reconstruction rel error = %v, want 1", got)
	}
	if got := RelError([]float64{0, 0}, []float64{1, 1}); got != 0 {
		t.Fatalf("zero input rel error = %v, want 0", got)
	}
}

// The wire hot path must allocate nothing: encode and decode run once per
// client per round on vectors of model size.
func TestWireHotPathZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	v := randVec(rng, 4096)
	back := make([]float64, len(v))
	for s := SchemeDense; s < numSchemes; s++ {
		dst := make([]byte, EncodedBytes(s, len(v)))
		if n := testing.AllocsPerRun(50, func() {
			EncodeInto(s, dst, v, rng)
		}); n != 0 {
			t.Fatalf("EncodeInto(%v) allocates %v/op", s, n)
		}
		EncodeInto(s, dst, v, rng)
		if n := testing.AllocsPerRun(50, func() {
			if err := DecodeInto(back, s, dst); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Fatalf("DecodeInto(%v) allocates %v/op", s, n)
		}
	}
}

// CompressReuse/DecompressInto must reach zero steady-state allocations for
// every built-in compressor once buffers have grown.
func TestCompressorReuseZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	v := randVec(rng, 2048)
	back := make([]float64, len(v))
	for _, c := range []Compressor{Identity{}, NewQuantizer(8), NewTopK(64), NewCountSketch(5, 256, 1)} {
		p := CompressReuse(c, nil, v, rng) // warm up buffers
		DecompressInto(p, back)
		if n := testing.AllocsPerRun(50, func() {
			p = CompressReuse(c, p, v, rng)
			DecompressInto(p, back)
		}); n != 0 {
			t.Fatalf("%s: compress+decompress reuse allocates %v/op", c.Name(), n)
		}
	}
}

// Reuse paths must produce the same payloads as the allocating paths.
func TestCompressReuseMatchesCompress(t *testing.T) {
	for _, c := range []Compressor{Identity{}, NewQuantizer(8), NewTopK(64), NewCountSketch(5, 256, 1)} {
		rngA := rand.New(rand.NewSource(27))
		rngB := rand.New(rand.NewSource(27))
		vrng := rand.New(rand.NewSource(28))
		var prev Payload
		for i := 0; i < 3; i++ {
			v := randVec(vrng, 777)
			fresh := c.Compress(v, rngA).Decompress(len(v))
			prev = CompressReuse(c, prev, v, rngB)
			reused := make([]float64, len(v))
			DecompressInto(prev, reused)
			for j := range fresh {
				if fresh[j] != reused[j] {
					t.Fatalf("%s: reuse path diverges at round %d coord %d: %v vs %v",
						c.Name(), i, j, fresh[j], reused[j])
				}
			}
		}
	}
}

func TestObserveReconError(t *testing.T) {
	before := ReconErrCount(SchemeInt8)
	ObserveReconError(SchemeInt8, 0.01)
	ObserveReconError(SchemeDense, 0.01) // lossless: ignored
	ObserveReconError(Scheme(99), 0.01)  // invalid: ignored
	if got := ReconErrCount(SchemeInt8); got != before+1 {
		t.Fatalf("recon error count = %d, want %d", got, before+1)
	}
	if ReconErrCount(SchemeDense) != 0 || ReconErrCount(Scheme(99)) != 0 {
		t.Fatal("dense/invalid scheme recon counts must be 0")
	}
}
