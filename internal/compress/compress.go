// Package compress implements the gradient/update compression schemes from
// the communication-efficiency literature the paper builds on (Konečný et
// al.; sketching à la FetchSGD): stochastic uniform quantization (QSGD),
// top-k sparsification, and count-sketch compression. They plug into the
// federated runtime through the Compressor interface to trade accuracy for
// upload volume — an extension the paper's related-work section motivates
// but does not evaluate.
package compress

import (
	"fmt"
	"math"
	"math/rand"
)

// Compressor turns a dense vector into a compact wire form and back. The
// round trip is lossy; Bytes reports the encoded size used for
// communication accounting.
type Compressor interface {
	Name() string
	// Compress returns an opaque payload for v.
	Compress(v []float64, rng *rand.Rand) Payload
}

// Payload is a compressed vector.
type Payload interface {
	// Decompress reconstructs a dense vector of length n.
	Decompress(n int) []float64
	// Bytes is the wire size of the payload.
	Bytes() int64
}

// IntoPayload is implemented by payloads that can reconstruct into a
// caller-provided buffer without allocating. Every built-in payload
// implements it.
type IntoPayload interface {
	// DecompressInto reconstructs the vector into dst, whose length must be
	// the original element count.
	DecompressInto(dst []float64)
}

// DecompressInto reconstructs p into dst, using the zero-alloc path when p
// implements IntoPayload and falling back to Decompress+copy otherwise.
func DecompressInto(p Payload, dst []float64) {
	if ip, ok := p.(IntoPayload); ok {
		ip.DecompressInto(dst)
		return
	}
	copy(dst, p.Decompress(len(dst)))
}

// ReuseCompressor is implemented by compressors with a buffer-reusing
// encode path: CompressReuse may cannibalize prev's backing storage (the
// caller must not touch prev afterwards) and allocates nothing once the
// buffers have grown to steady state.
type ReuseCompressor interface {
	CompressReuse(prev Payload, v []float64, rng *rand.Rand) Payload
}

// CompressReuse re-encodes v, reusing prev's buffers when the compressor
// supports it (prev may be nil); otherwise it falls back to Compress.
func CompressReuse(c Compressor, prev Payload, v []float64, rng *rand.Rand) Payload {
	if rc, ok := c.(ReuseCompressor); ok {
		return rc.CompressReuse(prev, v, rng)
	}
	return c.Compress(v, rng)
}

// --- Identity ---

// Identity is the no-op compressor (dense float64).
type Identity struct{}

// Name returns "identity".
func (Identity) Name() string { return "identity" }

// Compress copies v.
func (Identity) Compress(v []float64, rng *rand.Rand) Payload {
	return &densePayload{v: append([]float64(nil), v...)}
}

// CompressReuse copies v into prev's backing array when it fits, so the
// steady state of a round loop allocates nothing.
func (Identity) CompressReuse(prev Payload, v []float64, rng *rand.Rand) Payload {
	if dp, ok := prev.(*densePayload); ok && cap(dp.v) >= len(v) {
		dp.v = dp.v[:len(v)]
		copy(dp.v, v)
		return dp
	}
	return &densePayload{v: append([]float64(nil), v...)}
}

type densePayload struct{ v []float64 }

func (p *densePayload) Decompress(n int) []float64 {
	if n != len(p.v) {
		panic(fmt.Sprintf("compress: dense payload has %d values, want %d", len(p.v), n))
	}
	return append([]float64(nil), p.v...)
}

// DecompressInto copies the payload into dst without allocating.
func (p *densePayload) DecompressInto(dst []float64) {
	if len(dst) != len(p.v) {
		panic(fmt.Sprintf("compress: dense payload has %d values, want %d", len(p.v), len(dst)))
	}
	copy(dst, p.v)
}

func (p *densePayload) Bytes() int64 { return int64(8 * len(p.v)) }

// --- Stochastic uniform quantization (QSGD) ---

// Quantizer is QSGD-style stochastic uniform quantization with 2^Bits
// levels per coordinate plus one float32 scale per vector. Unbiased:
// E[Decompress] equals the input.
type Quantizer struct {
	Bits uint // levels = 2^Bits - 1; valid range [1, 16]
}

// NewQuantizer creates a b-bit quantizer.
func NewQuantizer(bits uint) Quantizer {
	if bits < 1 || bits > 16 {
		panic(fmt.Sprintf("compress: quantizer bits %d outside [1,16]", bits))
	}
	return Quantizer{Bits: bits}
}

// Name returns e.g. "q8".
func (q Quantizer) Name() string { return fmt.Sprintf("q%d", q.Bits) }

// Compress quantizes each coordinate to the grid {-L..L}·(max/L)
// stochastically, preserving the expectation.
func (q Quantizer) Compress(v []float64, rng *rand.Rand) Payload {
	return q.CompressReuse(nil, v, rng)
}

// CompressReuse is Compress reusing prev's level buffer when it fits.
func (q Quantizer) CompressReuse(prev Payload, v []float64, rng *rand.Rand) Payload {
	p, ok := prev.(*quantPayload)
	if !ok || cap(p.q) < len(v) {
		p = &quantPayload{q: make([]int32, len(v))}
	}
	p.bits = q.Bits
	p.q = p.q[:len(v)]
	levels := int64(1)<<q.Bits - 1
	maxAbs := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > maxAbs {
			maxAbs = a
		}
	}
	p.scale = maxAbs
	if maxAbs == 0 {
		for i := range p.q {
			p.q[i] = 0
		}
		return p
	}
	for i, x := range v {
		t := x / maxAbs * float64(levels) // in [-levels, levels]
		lo := math.Floor(t)
		frac := t - lo
		qv := int64(lo)
		if rng.Float64() < frac {
			qv++
		}
		p.q[i] = int32(qv)
	}
	return p
}

type quantPayload struct {
	bits  uint
	scale float64
	q     []int32
}

func (p *quantPayload) Decompress(n int) []float64 {
	out := make([]float64, n)
	p.DecompressInto(out)
	return out
}

// DecompressInto reconstructs into dst without allocating.
func (p *quantPayload) DecompressInto(dst []float64) {
	if len(dst) != len(p.q) {
		panic(fmt.Sprintf("compress: quantized payload has %d values, want %d", len(p.q), len(dst)))
	}
	if p.scale == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	levels := float64(int64(1)<<p.bits - 1)
	for i, qv := range p.q {
		dst[i] = float64(qv) / levels * p.scale
	}
}

func (p *quantPayload) Bytes() int64 {
	// bits+1 per coordinate (sign), packed, plus the float32 scale.
	return int64((uint(len(p.q))*(p.bits+1)+7)/8) + 4
}

// --- Top-k sparsification ---

// TopK keeps the k largest-magnitude coordinates and zeroes the rest.
// Biased but communication-optimal per retained value.
type TopK struct {
	K int
}

// NewTopK creates a top-k sparsifier.
func NewTopK(k int) TopK {
	if k < 1 {
		panic("compress: top-k needs k ≥ 1")
	}
	return TopK{K: k}
}

// Name returns e.g. "top64".
func (t TopK) Name() string { return fmt.Sprintf("top%d", t.K) }

// Compress selects the K largest |v_i|.
func (t TopK) Compress(v []float64, rng *rand.Rand) Payload {
	return t.CompressReuse(nil, v, rng)
}

// CompressReuse is Compress reusing prev's index/value buffers and
// quickselect scratch when they fit.
func (t TopK) CompressReuse(prev Payload, v []float64, rng *rand.Rand) Payload {
	p, ok := prev.(*sparsePayload)
	if !ok {
		p = &sparsePayload{}
	}
	p.n = len(v)
	p.idx = p.idx[:0]
	p.val = p.val[:0]
	k := t.K
	if k > len(v) {
		k = len(v)
	}
	// Threshold via quickselect on magnitudes (destructive, so on scratch).
	if cap(p.mags) < len(v) {
		p.mags = make([]float64, len(v))
	}
	mags := p.mags[:len(v)]
	for i, x := range v {
		mags[i] = math.Abs(x)
	}
	thresh := kthLargest(mags, k)
	for i, x := range v {
		if math.Abs(x) >= thresh && len(p.idx) < k {
			p.idx = append(p.idx, int32(i))
			p.val = append(p.val, x)
		}
	}
	return p
}

type sparsePayload struct {
	n    int
	idx  []int32
	val  []float64
	mags []float64 // quickselect scratch, not part of the wire payload
}

func (p *sparsePayload) Decompress(n int) []float64 {
	out := make([]float64, n)
	p.DecompressInto(out)
	return out
}

// DecompressInto reconstructs into dst without allocating.
func (p *sparsePayload) DecompressInto(dst []float64) {
	if len(dst) != p.n {
		panic(fmt.Sprintf("compress: sparse payload for %d values, want %d", p.n, len(dst)))
	}
	for i := range dst {
		dst[i] = 0
	}
	for i, ix := range p.idx {
		dst[ix] = p.val[i]
	}
}

func (p *sparsePayload) Bytes() int64 { return int64(len(p.idx))*(4+8) + 4 }

// kthLargest returns the k-th largest value of xs (destructive).
func kthLargest(xs []float64, k int) float64 {
	if k >= len(xs) {
		min := math.Inf(1)
		for _, x := range xs {
			if x < min {
				min = x
			}
		}
		return min
	}
	// Select index len-k in ascending order.
	target := len(xs) - k
	lo, hi := 0, len(xs)-1
	for lo < hi {
		p := partition(xs, lo, hi)
		switch {
		case p == target:
			return xs[p]
		case p < target:
			lo = p + 1
		default:
			hi = p - 1
		}
	}
	return xs[target]
}

func partition(xs []float64, lo, hi int) int {
	pivot := xs[hi]
	i := lo
	for j := lo; j < hi; j++ {
		if xs[j] < pivot {
			xs[i], xs[j] = xs[j], xs[i]
			i++
		}
	}
	xs[i], xs[hi] = xs[hi], xs[i]
	return i
}
