package compress

import "repro/internal/telemetry"

// RelErrBuckets covers the reconstruction-error histograms: f32 sits in the
// 1e-8 decades, q8 around 1e-3..1e-2, q1 near 1.
var RelErrBuckets = []float64{1e-8, 1e-6, 1e-4, 3e-4, 1e-3, 3e-3, 0.01, 0.03, 0.1, 0.3, 1, 3}

// reconErrHists are process-wide per-scheme reconstruction-error series on
// the default registry, mirroring the transport's codec byte counters: every
// lossy encode (client update, δ map, broadcast) observes the relative L2
// error between the original vector and what the peer will reconstruct.
var reconErrHists [NumSchemes]*telemetry.Histogram

func init() {
	for s := SchemeF32; s < numSchemes; s++ {
		reconErrHists[s] = telemetry.Default().Histogram(
			`rfl_compression_recon_error{scheme="`+s.String()+`"}`,
			"relative L2 reconstruction error of lossy-compressed payloads, per scheme",
			RelErrBuckets)
	}
}

// ObserveReconError records one payload's relative reconstruction error.
// Dense (lossless) payloads and invalid schemes are ignored.
func ObserveReconError(s Scheme, rel float64) {
	if s == SchemeDense || !s.Valid() {
		return
	}
	reconErrHists[s].Observe(rel)
}

// ReconErrCount reports how many payloads have been observed for s on the
// process registry — used by the telemetry smoke gate.
func ReconErrCount(s Scheme) int64 {
	if s == SchemeDense || !s.Valid() {
		return 0
	}
	return reconErrHists[s].Count()
}
