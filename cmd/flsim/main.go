// Command flsim runs a single federated-learning simulation with fully
// configurable parameters — the general-purpose driver behind the
// experiment harness.
//
// Example:
//
//	flsim -dataset cifar -method rfedavg+ -clients 20 -rounds 30 \
//	      -e 5 -b 50 -sr 1.0 -sim 0 -lambda 5e-3
//	flsim -dataset sent140 -method fedavg -natural -clients 20 -rounds 10
//
// Asynchronous aggregation: -async keeps only the -buffer-k fastest updates
// per round (under a simulated latency model; -slow makes chosen clients
// persistently slow) and folds deferred updates into later rounds with the
// 1/(1+age)^λ staleness discount (-staleness-lambda).
//
// Observability: -trace writes the run's span tree (session → round →
// client_round → local_steps/mmd_grad) and -ledger one training-dynamics
// record per round (loss, per-client losses and update norms, the pairwise
// MMD matrix under rfedavg/rfedavg+, wire bytes); render both with
// cmd/fltrace. -events logs lifecycle events as JSONL.
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/fl"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/telemetry"
)

func main() {
	var (
		dataset    = flag.String("dataset", "mnist", "mnist, cifar, sent140, or femnist")
		method     = flag.String("method", "rfedavg+", "fedavg, fedprox, scaffold, qfedavg, rfedavg, rfedavg+")
		clients    = flag.Int("clients", 10, "number of clients N")
		rounds     = flag.Int("rounds", 20, "communication rounds C")
		e          = flag.Int("e", 5, "local steps E")
		b          = flag.Int("b", 32, "batch size B")
		sr         = flag.Float64("sr", 1.0, "sample ratio SR")
		sim        = flag.Float64("sim", 0.0, "similarity s ∈ [0,1] for the label-skew split")
		natural    = flag.Bool("natural", false, "use the natural per-user partition (sent140/femnist)")
		lambda     = flag.Float64("lambda", 5e-3, "distribution-regularization weight λ")
		mu         = flag.Float64("mu", 1.0, "FedProx proximal μ")
		q          = flag.Float64("q", 1.0, "q-FedAvg fairness exponent")
		lr         = flag.Float64("lr", 0.1, "local learning rate")
		trainN     = flag.Int("train", 3000, "training samples (image datasets)")
		testN      = flag.Int("test", 800, "test samples (image datasets)")
		featureDim = flag.Int("featdim", 48, "feature-layer width d")
		seed       = flag.Int64("seed", 1, "random seed")
		heapBudget = flag.Int("heap-budget-mb", 0, "fail the run if peak heap use exceeds this many MiB (0 = unlimited); the scale-smoke guard that steady-state memory is O(cohort), not O(N)")
		wallBudget = flag.Duration("wall-budget", 0, "fail the run if training exceeds this wall-clock budget (0 = unlimited)")
		detailN    = cliflags.LedgerDetail()
		async      = cliflags.AsyncFlags(false)
		slow       = flag.String("slow", "", "comma-separated per-client latency multipliers for the async simulator, e.g. 1,1,8,1 (empty = uniform)")
		compressV  = cliflags.Compress("dense")
		compressEF = flag.Bool("compress-ef", false, "carry quantization residuals across rounds (error feedback)")
		showTelem  = cliflags.Summary()
		healthF    = cliflags.HealthFlags()
		telemAddr  = flag.String("telemetry-addr", "", "serve /metrics, pprof, and /debug/fl/health on this address for the duration of the run (e.g. 127.0.0.1:9090)")
		byzantine  = flag.String("byzantine", "", "comma-separated Byzantine clients, id:signflip or id:scaleC (e.g. 2:signflip,5:scale10): tamper with the listed clients' model updates before aggregation")
		obs        = cliflags.Register(true, true, true)
	)
	flag.Parse()
	if err := obs.Open(); err != nil {
		fmt.Fprintln(os.Stderr, "flsim:", err)
		os.Exit(1)
	}
	defer obs.Close()

	scheme, err := cliflags.ParseCompress(*compressV)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flsim:", err)
		os.Exit(2)
	}
	mon, err := healthF.Monitor(telemetry.Default(), obs.Events)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flsim:", err)
		os.Exit(2)
	}
	bz, err := parseByzantine(*byzantine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flsim:", err)
		os.Exit(2)
	}
	if *telemAddr != "" {
		srv, err := telemetry.ListenAndServe(*telemAddr, telemetry.Default(),
			telemetry.DebugEndpoint{Path: "/debug/fl/health", H: mon.Handler()})
		if err != nil {
			fmt.Fprintln(os.Stderr, "flsim:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("telemetry on http://%s (metrics, pprof, /debug/fl/health)\n", srv.Addr())
	}

	train, test, builder, defLR, newOpt, err := makeData(*dataset, *trainN, *testN, *clients, *featureDim, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flsim:", err)
		os.Exit(2)
	}
	if !flagWasSet("lr") {
		*lr = defLR
	}

	rng := rand.New(rand.NewSource(*seed * 13))
	var shards []*data.Dataset
	if *clients > train.Len() {
		// More simulated clients than training samples (the 100k-client
		// scale regime): the similarity split would leave most shards
		// empty, so cycle the samples — one per client, wrapping around.
		// Cohort subsampling means only a sliver of them train per round.
		shards = make([]*data.Dataset, *clients)
		for k := range shards {
			shards[k] = train.Subset([]int{k % train.Len()})
		}
	} else {
		var parts data.Partition
		if *natural {
			if train.Users == nil {
				fmt.Fprintf(os.Stderr, "flsim: %s has no natural user partition\n", *dataset)
				os.Exit(2)
			}
			parts = data.PartitionByUser(train.Users, *clients, rng)
		} else {
			parts = data.PartitionBySimilarity(train.Y, *clients, *sim, rng)
		}
		shards = make([]*data.Dataset, len(parts))
		for k, idx := range parts {
			shards[k] = train.Subset(idx)
		}
	}

	slowFactor, err := parseSlow(*slow, *clients)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flsim:", err)
		os.Exit(2)
	}

	cfg := fl.Config{
		Builder:         builder,
		ModelSeed:       *seed * 31,
		Seed:            *seed * 17,
		LocalSteps:      *e,
		BatchSize:       *b,
		SampleRatio:     *sr,
		LR:              opt.ConstLR(*lr),
		NewOptimizer:    newOpt,
		Compress:        scheme,
		CompressEF:      *compressEF,
		Async:           *async.Enabled,
		BufferK:         *async.BufferK,
		StalenessLambda: *async.StalenessLambda,
		SlowFactor:      slowFactor,
		Tracer:          obs.Tracer,
		Ledger:          obs.Ledger,
		LedgerDetailN:   *detailN,
		Events:          obs.Events,
		Health:          mon,
		Byzantine:       bz,
	}
	f := fl.NewFederation(cfg, shards, test)

	var alg fl.Algorithm
	switch strings.ToLower(*method) {
	case "fedavg":
		alg = fl.NewFedAvg()
	case "fedprox":
		alg = fl.NewFedProx(*mu)
	case "scaffold":
		alg = fl.NewScaffold(1.0)
	case "qfedavg", "q-fedavg":
		alg = fl.NewQFedAvg(*q)
	case "rfedavg":
		alg = core.NewRFedAvg(*lambda)
	case "rfedavg+", "rfedavgplus":
		alg = core.NewRFedAvgPlus(*lambda)
	default:
		fmt.Fprintf(os.Stderr, "flsim: unknown method %q\n", *method)
		os.Exit(2)
	}

	fmt.Printf("%s on %s: N=%d E=%d B=%d SR=%g rounds=%d (|w|=%d, d=%d)\n",
		alg.Name(), *dataset, *clients, *e, *b, *sr, *rounds, f.NumParams(), f.FeatureDim())
	watch := startHeapWatch()
	start := time.Now()
	h := fl.Run(f, alg, *rounds)
	elapsed := time.Since(start)
	peakMiB := watch.stop()
	budgetFail := false
	if *heapBudget > 0 || *wallBudget > 0 {
		fmt.Printf("budget: peak heap %.1f MiB, wall %.2fs\n", peakMiB, elapsed.Seconds())
	}
	if *heapBudget > 0 && peakMiB > float64(*heapBudget) {
		fmt.Fprintf(os.Stderr, "flsim: peak heap %.1f MiB exceeds the %d MiB budget\n", peakMiB, *heapBudget)
		budgetFail = true
	}
	if *wallBudget > 0 && elapsed > *wallBudget {
		fmt.Fprintf(os.Stderr, "flsim: run took %s, over the %s wall budget\n",
			elapsed.Round(time.Millisecond), *wallBudget)
		budgetFail = true
	}
	for _, r := range h.Rounds {
		acc := "      -"
		if !math.IsNaN(r.TestAcc) {
			acc = fmt.Sprintf("%.4f", r.TestAcc)
		}
		fmt.Printf("round %3d  loss %.4f  acc %s  %.2fs  up %s down %s\n",
			r.Round+1, r.TrainLoss, acc, r.Seconds,
			metrics.FormatBytes(r.UpBytes), metrics.FormatBytes(r.DownBytes))
	}
	fmt.Println(h.Summary())
	if *showTelem {
		fmt.Println("telemetry summary:")
		telemetry.Default().WriteSummary(os.Stdout)
	}
	if budgetFail {
		obs.Close()
		os.Exit(1)
	}
}

// heapWatch samples the live heap in the background so a budget check sees
// the run's peak, not whatever the final GC left behind.
type heapWatch struct {
	done chan struct{}
	peak chan float64
}

func startHeapWatch() *heapWatch {
	w := &heapWatch{done: make(chan struct{}), peak: make(chan float64, 1)}
	go func() {
		var ms runtime.MemStats
		max := 0.0
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		for {
			runtime.ReadMemStats(&ms)
			if m := float64(ms.HeapAlloc) / (1 << 20); m > max {
				max = m
			}
			select {
			case <-w.done:
				w.peak <- max
				return
			case <-tick.C:
			}
		}
	}()
	return w
}

// stop ends the sampler and returns the observed peak heap in MiB.
func (w *heapWatch) stop() float64 {
	close(w.done)
	return <-w.peak
}

func makeData(dataset string, trainN, testN, clients, featureDim int, seed int64) (
	train, test *data.Dataset, builder nn.Builder, lr float64, newOpt func() opt.Optimizer, err error) {
	newOpt = func() opt.Optimizer { return opt.NewSGD() }
	lr = 0.1
	switch dataset {
	case "mnist":
		return data.SynthMNIST(trainN, seed), data.SynthMNIST(testN, seed+1),
			nn.NewImageCNN(data.SynthMNISTSpec, featureDim), lr, newOpt, nil
	case "cifar":
		return data.SynthCIFAR(trainN, seed), data.SynthCIFAR(testN, seed+1),
			nn.NewImageCNN(data.SynthCIFARSpec, featureDim), lr, newOpt, nil
	case "femnist":
		perWriter := trainN / clients
		if perWriter < 8 {
			perWriter = 8
		}
		return data.SynthFEMNIST(clients, perWriter, seed), data.SynthFEMNIST(clients/2+1, perWriter, seed+1),
			nn.NewImageCNN(data.SynthFEMNISTSpec, featureDim), lr, newOpt, nil
	case "sent140":
		perUser := trainN / clients
		if perUser < 8 {
			perUser = 8
		}
		return data.SynthSent140(clients, perUser, seed), data.SynthSent140(clients/2+1, perUser, seed+1),
			nn.NewTextLSTM(data.SynthSent140Spec, 16, 32, featureDim), 0.01,
			func() opt.Optimizer { return opt.NewRMSProp() }, nil
	default:
		return nil, nil, nil, 0, nil, fmt.Errorf("unknown dataset %q", dataset)
	}
}

// parseByzantine parses the -byzantine list: "id:signflip" or "id:scaleC"
// entries, comma-separated; multiple entries for one client compose.
func parseByzantine(v string) (map[int]fl.Byzantine, error) {
	if v == "" {
		return nil, nil
	}
	out := make(map[int]fl.Byzantine)
	for _, part := range strings.Split(v, ",") {
		part = strings.TrimSpace(part)
		id, mode, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("-byzantine: %q: want id:signflip or id:scaleC", part)
		}
		ci, err := strconv.Atoi(id)
		if err != nil || ci < 0 {
			return nil, fmt.Errorf("-byzantine: bad client id %q", id)
		}
		b := out[ci]
		switch {
		case mode == "signflip":
			b.SignFlip = true
		case strings.HasPrefix(mode, "scale"):
			c, err := strconv.ParseFloat(mode[len("scale"):], 64)
			if err != nil || c <= 0 {
				return nil, fmt.Errorf("-byzantine: bad scale %q", mode)
			}
			b.Scale = c
		default:
			return nil, fmt.Errorf("-byzantine: unknown mode %q (signflip or scaleC)", mode)
		}
		out[ci] = b
	}
	return out, nil
}

// parseSlow parses the -slow multiplier list. An empty value means uniform
// latency; otherwise exactly one multiplier per client is required.
func parseSlow(v string, clients int) ([]float64, error) {
	if v == "" {
		return nil, nil
	}
	parts := strings.Split(v, ",")
	if len(parts) != clients {
		return nil, fmt.Errorf("-slow: got %d multipliers, want %d (one per client)", len(parts), clients)
	}
	fs := make([]float64, len(parts))
	for i, p := range parts {
		var err error
		if fs[i], err = strconv.ParseFloat(strings.TrimSpace(p), 64); err != nil {
			return nil, fmt.Errorf("-slow: %q: %v", p, err)
		}
		if fs[i] <= 0 {
			return nil, fmt.Errorf("-slow: multiplier %g must be positive", fs[i])
		}
	}
	return fs, nil
}

func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}
