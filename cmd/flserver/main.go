// Command flserver runs a real federated-learning server over TCP. Clients
// (cmd/flclient) connect, join, and train; the server aggregates with
// FedAvg or rFedAvg+ and prints the per-round loss.
//
// Example (3 terminals):
//
//	flserver -addr :7070 -clients 2 -rounds 10 -algo rfedavg+
//	flclient -addr localhost:7070 -dataset mnist -shard 0 -of 2
//	flclient -addr localhost:7070 -dataset mnist -shard 1 -of 2
//
// The model architecture is fixed by (-dataset, -featdim, -modelseed) and
// must match the clients'.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/transport"
)

func main() {
	var (
		addr       = flag.String("addr", ":7070", "listen address")
		clients    = flag.Int("clients", 2, "number of clients to wait for")
		rounds     = flag.Int("rounds", 10, "communication rounds")
		algo       = flag.String("algo", "rfedavg+", "fedavg or rfedavg+")
		dataset    = flag.String("dataset", "mnist", "mnist, cifar, femnist, or sent140 (fixes the model)")
		featureDim = flag.Int("featdim", 48, "feature-layer width d")
		modelSeed  = flag.Int64("modelseed", 7, "initial-model seed (must match clients)")
		testN      = flag.Int("test", 500, "server-side test samples for final evaluation")
		sr         = flag.Float64("sr", 1.0, "sample ratio per round (partial participation)")
		seed       = flag.Int64("seed", 1, "cohort-sampling seed")
	)
	flag.Parse()

	builder, err := modelFor(*dataset, *featureDim)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flserver:", err)
		os.Exit(2)
	}
	net := builder(*modelSeed)

	l, err := transport.Listen(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flserver:", err)
		os.Exit(1)
	}
	defer l.Close()
	fmt.Printf("listening on %s, waiting for %d clients…\n", l.Addr(), *clients)

	conns := make([]transport.Conn, *clients)
	for i := range conns {
		c, err := l.Accept()
		if err != nil {
			fmt.Fprintln(os.Stderr, "flserver: accept:", err)
			os.Exit(1)
		}
		conns[i] = c
		fmt.Printf("client %d connected\n", i)
	}

	cfg := transport.ServerConfig{
		Algorithm:     transport.Algorithm(*algo),
		Rounds:        *rounds,
		InitialParams: net.GetFlat(),
		FeatureDim:    net.FeatureDim,
		SampleRatio:   *sr,
		Seed:          *seed,
	}
	res, err := transport.Serve(cfg, conns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flserver:", err)
		os.Exit(1)
	}
	for i, loss := range res.RoundLosses {
		fmt.Printf("round %3d  loss %.4f\n", i+1, loss)
	}

	test := testSetFor(*dataset, *testN)
	if test != nil {
		net.SetFlat(res.FinalParams)
		idx := make([]int, test.Len())
		for i := range idx {
			idx[i] = i
		}
		x, y := test.Gather(idx)
		fmt.Printf("final test accuracy: %.4f\n", nn.Accuracy(net.Predict(x), y))
	}
}

func modelFor(dataset string, featureDim int) (nn.Builder, error) {
	switch dataset {
	case "mnist":
		return nn.NewImageCNN(data.SynthMNISTSpec, featureDim), nil
	case "cifar":
		return nn.NewImageCNN(data.SynthCIFARSpec, featureDim), nil
	case "femnist":
		return nn.NewImageCNN(data.SynthFEMNISTSpec, featureDim), nil
	case "sent140":
		return nn.NewTextLSTM(data.SynthSent140Spec, 16, 32, featureDim), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q", dataset)
	}
}

func testSetFor(dataset string, n int) *data.Dataset {
	switch dataset {
	case "mnist":
		return data.SynthMNIST(n, 999)
	case "cifar":
		return data.SynthCIFAR(n, 999)
	case "femnist":
		return data.SynthFEMNIST(10, n/10+1, 999)
	case "sent140":
		return data.SynthSent140(10, n/10+1, 999)
	default:
		return nil
	}
}
