// Command flserver runs a real federated-learning server over TCP. Clients
// (cmd/flclient) connect, join, and train; the server aggregates with
// FedAvg or rFedAvg+ and prints the per-round loss.
//
// Example (3 terminals):
//
//	flserver -addr :7070 -clients 2 -rounds 10 -algo rfedavg+
//	flclient -addr localhost:7070 -dataset mnist -shard 0 -of 2
//	flclient -addr localhost:7070 -dataset mnist -shard 1 -of 2
//
// The model architecture is fixed by (-dataset, -featdim, -modelseed) and
// must match the clients'.
//
// Fault tolerance: with -deadline set, a client that hangs or crashes is
// evicted at the deadline and the round completes over the survivors;
// clients reconnecting later (flclient -retries) are re-admitted at the
// next round boundary. -min-clients sets the quorum below which a round is
// retried, and -checkpoint makes the server persist round checkpoints so a
// killed session can be resumed with -resume.
//
// Asynchronous aggregation: -async closes each round once the -buffer-k
// fastest updates arrive; stragglers keep running and their updates are
// folded into the next round's aggregate, discounted by 1/(1+age)^λ
// (-staleness-lambda). -adaptive-deadline replaces the fixed -deadline with
// a per-round deadline tracking per-client round-time EWMAs, clamped to
// [-min-deadline, -max-deadline]. Buffered updates survive checkpoints, so
// -resume restores them bit-for-bit.
//
// Observability: -telemetry-addr starts an HTTP listener exposing the
// process's metric registry as Prometheus text at /metrics, a liveness
// probe at /healthz, and the standard pprof endpoints under /debug/pprof/.
// -events appends one JSON line per lifecycle event (evict, rejoin, retry,
// checkpoint, resume) to a file, and the registry summary prints when the
// session ends. -trace writes identified spans for every round (server
// phases and, via span contexts carried in the frame headers, the clients'
// local work) and -ledger one training-dynamics record per round attempt;
// render both with cmd/fltrace.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cliflags"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

func main() {
	var (
		addr       = flag.String("addr", ":7070", "listen address")
		clients    = flag.Int("clients", 2, "number of clients to wait for")
		rounds     = flag.Int("rounds", 10, "communication rounds")
		algo       = flag.String("algo", "rfedavg+", "fedavg or rfedavg+")
		dataset    = flag.String("dataset", "mnist", "mnist, cifar, femnist, or sent140 (fixes the model)")
		featureDim = flag.Int("featdim", 48, "feature-layer width d")
		modelSeed  = flag.Int64("modelseed", 7, "initial-model seed (must match clients)")
		testN      = flag.Int("test", 500, "server-side test samples for final evaluation")
		sr         = flag.Float64("sr", 1.0, "sample ratio per round (partial participation)")
		seed       = flag.Int64("seed", 1, "cohort-sampling seed")

		compressUp    = cliflags.Compress("dense")
		compressBcast = flag.String("compress-bcast", "dense", "wire-compression scheme for the model broadcast: dense, f32, q8, or q1")

		async      = cliflags.AsyncFlags(true)
		deadline   = flag.Duration("deadline", 30*time.Second, "per-phase deadline; clients that miss it are evicted (0 disables)")
		minClients = flag.Int("min-clients", 1, "quorum: rounds with fewer valid updates are retried")
		maxRetries = flag.Int("max-retries", 2, "consecutive failed attempts of one round before aborting")
		maxStale   = flag.Int("max-stale", 0, "exclude δ rows older than this many rounds from targets (0 = keep forever)")
		ckptPath   = flag.String("checkpoint", "", "write atomic round checkpoints to this file")
		ckptEvery  = flag.Int("checkpoint-every", 1, "checkpoint period in rounds")
		resume     = flag.Bool("resume", false, "resume from -checkpoint if it exists")

		ioWorkers = flag.Int("io-workers", 0, "goroutine budget for per-client send/recv phases (0 = 8×GOMAXPROCS capped at 256); bounds per-phase goroutines at large client counts")
		streamN   = flag.Int("stream-n", 0, "client count at which the δ table switches to streaming mean maintenance (0 = default threshold, negative = never)")
		detailN   = cliflags.LedgerDetail()

		telemetryAddr = flag.String("telemetry-addr", "", "serve /metrics, /healthz, /debug/pprof, and /debug/fl/health on this address (empty disables)")
		healthF       = cliflags.HealthFlags()
		obs           = cliflags.Register(true, true, true)
	)
	flag.Parse()
	if err := obs.Open(); err != nil {
		fmt.Fprintln(os.Stderr, "flserver:", err)
		os.Exit(1)
	}
	defer obs.Close()

	mon, err := healthF.Monitor(telemetry.Default(), obs.Events)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flserver:", err)
		os.Exit(2)
	}
	if *telemetryAddr != "" {
		ts, err := telemetry.ListenAndServe(*telemetryAddr, nil,
			telemetry.DebugEndpoint{Path: "/debug/fl/health", H: mon.Handler()})
		if err != nil {
			fmt.Fprintln(os.Stderr, "flserver:", err)
			os.Exit(1)
		}
		defer ts.Close()
		fmt.Printf("telemetry on http://%s/metrics (pprof under /debug/pprof/, health at /debug/fl/health)\n", ts.Addr())
	}

	upScheme, err := cliflags.ParseCompress(*compressUp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flserver:", err)
		os.Exit(2)
	}
	bcastScheme, err := cliflags.ParseCompress(*compressBcast)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flserver: -compress-bcast:", err)
		os.Exit(2)
	}

	builder, err := modelFor(*dataset, *featureDim)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flserver:", err)
		os.Exit(2)
	}
	net := builder(*modelSeed)

	l, err := transport.Listen(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flserver:", err)
		os.Exit(1)
	}
	defer l.Close()
	fmt.Printf("listening on %s, waiting for %d clients…\n", l.Addr(), *clients)

	conns := make([]transport.Conn, *clients)
	for i := range conns {
		c, err := l.Accept()
		if err != nil {
			fmt.Fprintln(os.Stderr, "flserver: accept:", err)
			os.Exit(1)
		}
		conns[i] = c
		fmt.Printf("client %d connected\n", i)
	}

	// Late connections are rejoin candidates: keep accepting in the
	// background and hand them to the server, which re-admits them into
	// evicted slots at round boundaries. The goroutine dies with the
	// process; closing the listener on return unblocks Accept.
	rejoin := make(chan transport.Conn, *clients)
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				close(rejoin)
				return
			}
			fmt.Println("late connection accepted (rejoin candidate)")
			rejoin <- c
		}
	}()

	cfg := transport.ServerConfig{
		Algorithm:        transport.Algorithm(*algo),
		Rounds:           *rounds,
		InitialParams:    net.GetFlat(),
		FeatureDim:       net.FeatureDim,
		SampleRatio:      *sr,
		Seed:             *seed,
		RoundDeadline:    *deadline,
		MinClients:       *minClients,
		Async:            *async.Enabled,
		BufferK:          *async.BufferK,
		StalenessLambda:  *async.StalenessLambda,
		AdaptiveDeadline: *async.Adaptive,
		MinDeadline:      *async.MinDeadline,
		MaxDeadline:      *async.MaxDeadline,
		MaxRoundRetries:  *maxRetries,
		MaxStaleness:     *maxStale,
		Rejoin:           rejoin,
		CheckpointPath:   *ckptPath,
		CheckpointEvery:  *ckptEvery,
		Codec: transport.CodecPolicy{
			Broadcast: bcastScheme,
			Update:    upScheme,
			Delta:     upScheme,
		},
		Logf: func(format string, args ...any) {
			fmt.Printf("[fault] "+format+"\n", args...)
		},
		Events:        obs.Events,
		Tracer:        obs.Tracer,
		Ledger:        obs.Ledger,
		Health:        mon,
		LedgerDetailN: *detailN,
		IOWorkers:     *ioWorkers,
		StreamN:       *streamN,
	}
	if *resume && *ckptPath != "" {
		if ck, err := transport.LoadCheckpoint(*ckptPath); err == nil {
			cfg.Resume = ck
			fmt.Printf("resuming from %s at round %d\n", *ckptPath, ck.Round)
		} else if !errors.Is(err, os.ErrNotExist) {
			fmt.Fprintln(os.Stderr, "flserver: resume:", err)
			os.Exit(1)
		}
	}

	res, err := transport.Serve(cfg, conns)
	if err != nil {
		obs.Close()
		fmt.Fprintln(os.Stderr, "flserver:", err)
		os.Exit(1)
	}
	for i, loss := range res.RoundLosses {
		fmt.Printf("round %3d  loss %.4f\n", i+1, loss)
	}
	if len(res.Evictions) > 0 || res.Rejoins > 0 || res.RetriedRounds > 0 {
		fmt.Printf("faults: %d evictions, %d rejoins, %d retried round attempts\n",
			len(res.Evictions), res.Rejoins, res.RetriedRounds)
		for _, ev := range res.Evictions {
			fmt.Printf("  evicted client %d (round %d): %s\n", ev.Client, ev.Round, ev.Reason)
		}
	}

	test := testSetFor(*dataset, *testN)
	if test != nil {
		net.SetFlat(res.FinalParams)
		idx := make([]int, test.Len())
		for i := range idx {
			idx[i] = i
		}
		x, y := test.Gather(idx)
		fmt.Printf("final test accuracy: %.4f\n", nn.Accuracy(net.Predict(x), y))
	}

	fmt.Println("telemetry summary:")
	telemetry.Default().WriteSummary(os.Stdout)
}

func modelFor(dataset string, featureDim int) (nn.Builder, error) {
	switch dataset {
	case "mnist":
		return nn.NewImageCNN(data.SynthMNISTSpec, featureDim), nil
	case "cifar":
		return nn.NewImageCNN(data.SynthCIFARSpec, featureDim), nil
	case "femnist":
		return nn.NewImageCNN(data.SynthFEMNISTSpec, featureDim), nil
	case "sent140":
		return nn.NewTextLSTM(data.SynthSent140Spec, 16, 32, featureDim), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q", dataset)
	}
}

func testSetFor(dataset string, n int) *data.Dataset {
	switch dataset {
	case "mnist":
		return data.SynthMNIST(n, 999)
	case "cifar":
		return data.SynthCIFAR(n, 999)
	case "femnist":
		return data.SynthFEMNIST(10, n/10+1, 999)
	case "sent140":
		return data.SynthSent140(10, n/10+1, 999)
	default:
		return nil
	}
}
