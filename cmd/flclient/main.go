// Command flclient joins a federated-learning server (cmd/flserver) over
// TCP with a private shard of a synthetic benchmark and trains locally.
//
// Example:
//
//	flclient -addr localhost:7070 -dataset mnist -shard 0 -of 2 -sim 0
//
// Every client of one session must use the same -dataset, -featdim, and
// -modelseed as the server, and a distinct -shard in [0, -of).
//
// The server's asynchronous mode (flserver -async) is transparent here: a
// client that misses a round's buffer keeps training and uploads as usual;
// the server parks the late update and folds it into a later round.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/cliflags"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

func main() {
	var (
		addr       = flag.String("addr", "localhost:7070", "server address")
		dataset    = flag.String("dataset", "mnist", "mnist, cifar, femnist, or sent140")
		shard      = flag.Int("shard", 0, "this client's shard index")
		of         = flag.Int("of", 2, "total number of shards (clients)")
		sim        = flag.Float64("sim", 0.0, "similarity s of the label-skew split")
		trainN     = flag.Int("train", 2000, "total training pool size (split across shards)")
		e          = flag.Int("e", 5, "local steps E")
		b          = flag.Int("b", 32, "batch size B")
		lr         = flag.Float64("lr", 0.1, "local learning rate")
		lambda     = flag.Float64("lambda", 5e-3, "regularization weight λ (used under rfedavg+)")
		featureDim = flag.Int("featdim", 48, "feature-layer width d")
		modelSeed  = flag.Int64("modelseed", 7, "initial-model seed (must match server)")
		dataSeed   = flag.Int64("dataseed", 1, "data-generation seed (must match other clients)")
		retries    = flag.Int("retries", 0, "re-dial and rejoin this many times after a connection failure")
		backoff    = flag.Duration("backoff", 2*time.Second, "wait between rejoin attempts")
		compressV  = cliflags.Compress("all")
		compressEF = flag.Bool("compress-ef", false, "carry quantization residuals across rounds (error feedback; breaks bitwise resume)")
		showTelem  = cliflags.Summary()
		healthF    = cliflags.HealthFlags()
		obs        = cliflags.Register(true, true, false)
	)
	flag.Parse()
	if err := obs.Open(); err != nil {
		fmt.Fprintln(os.Stderr, "flclient:", err)
		os.Exit(1)
	}
	// A client-side monitor watches only this client (a cohort of one):
	// loss trend and update norms against its own history, scored the same
	// way the server scores the fleet.
	mon, err := healthF.Monitor(telemetry.Default(), obs.Events)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flclient:", err)
		os.Exit(2)
	}
	if *shard < 0 || *shard >= *of {
		fmt.Fprintf(os.Stderr, "flclient: shard %d outside [0, %d)\n", *shard, *of)
		os.Exit(2)
	}
	caps, err := cliflags.ParseCompressCaps(*compressV)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flclient:", err)
		os.Exit(2)
	}

	var pool *data.Dataset
	var builder nn.Builder
	newOpt := func() opt.Optimizer { return opt.NewSGD() }
	switch *dataset {
	case "mnist":
		pool = data.SynthMNIST(*trainN, *dataSeed)
		builder = nn.NewImageCNN(data.SynthMNISTSpec, *featureDim)
	case "cifar":
		pool = data.SynthCIFAR(*trainN, *dataSeed)
		builder = nn.NewImageCNN(data.SynthCIFARSpec, *featureDim)
	case "femnist":
		pool = data.SynthFEMNIST(*of, *trainN / *of, *dataSeed)
		builder = nn.NewImageCNN(data.SynthFEMNISTSpec, *featureDim)
	case "sent140":
		pool = data.SynthSent140(*of, *trainN / *of, *dataSeed)
		builder = nn.NewTextLSTM(data.SynthSent140Spec, 16, 32, *featureDim)
		newOpt = func() opt.Optimizer { return opt.NewRMSProp() }
		if *lr == 0.1 {
			*lr = 0.01
		}
	default:
		fmt.Fprintf(os.Stderr, "flclient: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}

	// All clients derive the same partition from the shared data seed, then
	// keep only their own shard — no raw data ever crosses the wire.
	rng := rand.New(rand.NewSource(*dataSeed * 13))
	var parts data.Partition
	if pool.Users != nil {
		parts = data.PartitionByUser(pool.Users, *of, rng)
	} else {
		parts = data.PartitionBySimilarity(pool.Y, *of, *sim, rng)
	}
	mine := pool.Subset(parts[*shard])
	fmt.Printf("shard %d/%d: %d samples, %d classes\n", *shard, *of, mine.Len(), mine.Classes)

	cfg := transport.ClientConfig{
		Builder:       builder,
		ModelSeed:     *modelSeed,
		Seed:          int64(*shard + 1),
		ClientID:      *shard,
		LocalSteps:    *e,
		BatchSize:     *b,
		LR:            opt.ConstLR(*lr),
		NewOptimizer:  newOpt,
		Lambda:        *lambda,
		Caps:          caps,
		ErrorFeedback: *compressEF,
		Tracer:        obs.Tracer,
		Events:        obs.Events,
		Health:        mon,
	}

	// Dial-and-train with a rejoin loop: on a mid-session connection
	// failure the client re-dials, sends a fresh join carrying its slot
	// hint, and the server re-admits it at the next round boundary.
	// Reconnect waits are jittered to ±half the base backoff, seeded by the
	// shard index, so a mass disconnection in a large fleet doesn't re-dial
	// the server as a thundering herd on the same tick.
	jrng := rand.New(rand.NewSource(int64(*shard)*31 + 7))
	for attempt := 0; ; attempt++ {
		conn, err := transport.Dial(*addr)
		if err == nil {
			var final []float64
			final, err = RunAndReport(conn, mine, cfg)
			if err == nil {
				fmt.Printf("done: received final model (%d params); sent %s, received %s\n",
					len(final), fmtBytes(conn.BytesSent()), fmtBytes(conn.BytesReceived()))
				conn.Close()
				obs.Close()
				if *showTelem {
					fmt.Println("telemetry summary:")
					telemetry.Default().WriteSummary(os.Stdout)
				}
				return
			}
			conn.Close()
		}
		if attempt >= *retries {
			obs.Close()
			fmt.Fprintln(os.Stderr, "flclient:", err)
			os.Exit(1)
		}
		sleep := *backoff
		if *backoff > 0 {
			sleep = *backoff/2 + time.Duration(jrng.Int63n(int64(*backoff)))
		}
		fmt.Fprintf(os.Stderr, "flclient: %v — rejoining in %s (%d/%d)\n", err, sleep.Round(time.Millisecond), attempt+1, *retries)
		time.Sleep(sleep)
	}
}

// RunAndReport wraps transport.RunClient (split out for clarity).
func RunAndReport(conn transport.Conn, shard *data.Dataset, cfg transport.ClientConfig) ([]float64, error) {
	return transport.RunClient(conn, shard, cfg)
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
