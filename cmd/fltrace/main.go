// Command fltrace renders the trace and run-ledger files that flsim and
// flserver write (-trace / -ledger) into human-readable reports:
//
//   - With -trace: one ASCII waterfall per round, every span in the round's
//     subtree drawn as a time-proportional bar. The critical path — the
//     chain of spans the round's wall time actually waited on — is marked
//     with '#' bars, and a straggler line names the client the round
//     blocked on. -ledger additionally annotates each round header with
//     loss and wire bytes.
//   - With -ledger alone: a per-round summary table (loss, duration, wire
//     volume, cohort size, mean pairwise MMD, staleness, faults).
//   - With -ledger and -compare: a side-by-side comparison of two runs,
//     per-round wire bytes and MMD trajectory — the Table III view of
//     rFedAvg vs rFedAvg+.
//
// Example:
//
//	flsim -algos rfedavg+ -trace t.jsonl -ledger a.jsonl
//	fltrace -trace t.jsonl -ledger a.jsonl
//	flsim -algos rfedavg -ledger b.jsonl
//	fltrace -ledger a.jsonl -compare b.jsonl
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/traceview"
)

func main() {
	var (
		tracePath  = flag.String("trace", "", "trace JSONL file to render as per-round waterfalls")
		ledgerPath = flag.String("ledger", "", "run-ledger JSONL file (summary table, or waterfall annotations with -trace)")
		compare    = flag.String("compare", "", "second run-ledger JSONL file to compare against -ledger")
		width      = flag.Int("width", 64, "waterfall bar area width in columns")
	)
	flag.Parse()

	if *tracePath == "" && *ledgerPath == "" {
		fmt.Fprintln(os.Stderr, "fltrace: need -trace and/or -ledger (see -h)")
		os.Exit(2)
	}
	if *compare != "" && *ledgerPath == "" {
		fmt.Fprintln(os.Stderr, "fltrace: -compare needs -ledger as the first run")
		os.Exit(2)
	}

	var ledger []traceview.LedgerLine
	if *ledgerPath != "" {
		var err error
		ledger, err = traceview.ReadLedgerFile(*ledgerPath)
		if err != nil {
			fail(err)
		}
	}

	switch {
	case *tracePath != "":
		spans, err := traceview.ReadSpansFile(*tracePath)
		if err != nil {
			fail(err)
		}
		if err := traceview.Waterfall(os.Stdout, spans, ledger, *width); err != nil {
			fail(err)
		}
		if *compare != "" {
			fmt.Println()
		}
		fallthrough
	case *compare != "":
		if *compare != "" {
			other, err := traceview.ReadLedgerFile(*compare)
			if err != nil {
				fail(err)
			}
			if err := traceview.Compare(os.Stdout, ledger, other); err != nil {
				fail(err)
			}
		}
	default:
		if err := traceview.Summary(os.Stdout, ledger); err != nil {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fltrace:", err)
	os.Exit(1)
}
