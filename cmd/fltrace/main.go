// Command fltrace renders the trace and run-ledger files that flsim and
// flserver write (-trace / -ledger) into human-readable reports:
//
//   - With -trace: one ASCII waterfall per round, every span in the round's
//     subtree drawn as a time-proportional bar. The critical path — the
//     chain of spans the round's wall time actually waited on — is marked
//     with '#' bars, and a straggler line names the client the round
//     blocked on. -ledger additionally annotates each round header with
//     loss and wire bytes.
//   - With -ledger alone: a per-round summary table (loss, duration, wire
//     volume, cohort size, mean pairwise MMD, staleness, faults).
//   - With -ledger and -compare: a side-by-side comparison of two runs,
//     per-round wire bytes and MMD trajectory — the Table III view of
//     rFedAvg vs rFedAvg+.
//   - With -follow: a live dashboard that tails a still-growing ledger
//     (and, with -events, the event stream), refreshing in place — round
//     progress with a loss sparkline, the top-N unhealthiest clients, and
//     active health alerts. It exits when the run's run_done event arrives,
//     or renders forever (Ctrl-C) without an event stream.
//
// Example:
//
//	flsim -algos rfedavg+ -trace t.jsonl -ledger a.jsonl
//	fltrace -trace t.jsonl -ledger a.jsonl
//	flsim -algos rfedavg -ledger b.jsonl
//	fltrace -ledger a.jsonl -compare b.jsonl
//	flsim -algos rfedavg+ -ledger a.jsonl -events e.jsonl &
//	fltrace -follow -ledger a.jsonl -events e.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/traceview"
)

func main() {
	var (
		tracePath  = flag.String("trace", "", "trace JSONL file to render as per-round waterfalls")
		ledgerPath = flag.String("ledger", "", "run-ledger JSONL file (summary table, or waterfall annotations with -trace)")
		compare    = flag.String("compare", "", "second run-ledger JSONL file to compare against -ledger")
		width      = flag.Int("width", 64, "waterfall bar area width in columns")
		follow     = flag.Bool("follow", false, "tail -ledger/-events live and render a refreshing dashboard")
		eventsPath = flag.String("events", "", "event-log JSONL file for -follow (alerts, run_done)")
		interval   = flag.Duration("interval", time.Second, "refresh interval for -follow")
		topN       = flag.Int("top", 8, "unhealthiest clients shown by -follow")
	)
	flag.Parse()

	if *tracePath == "" && *ledgerPath == "" {
		fmt.Fprintln(os.Stderr, "fltrace: need -trace and/or -ledger (see -h)")
		os.Exit(2)
	}
	if *follow {
		if *ledgerPath == "" {
			fmt.Fprintln(os.Stderr, "fltrace: -follow needs -ledger")
			os.Exit(2)
		}
		if err := followLoop(*ledgerPath, *eventsPath, *topN, *interval, *width); err != nil {
			fail(err)
		}
		return
	}
	if *compare != "" && *ledgerPath == "" {
		fmt.Fprintln(os.Stderr, "fltrace: -compare needs -ledger as the first run")
		os.Exit(2)
	}

	var ledger []traceview.LedgerLine
	if *ledgerPath != "" {
		var err error
		ledger, err = traceview.ReadLedgerFile(*ledgerPath)
		if err != nil {
			fail(err)
		}
	}

	switch {
	case *tracePath != "":
		spans, err := traceview.ReadSpansFile(*tracePath)
		if err != nil {
			fail(err)
		}
		if err := traceview.Waterfall(os.Stdout, spans, ledger, *width); err != nil {
			fail(err)
		}
		if *compare != "" {
			fmt.Println()
		}
		fallthrough
	case *compare != "":
		if *compare != "" {
			other, err := traceview.ReadLedgerFile(*compare)
			if err != nil {
				fail(err)
			}
			if err := traceview.Compare(os.Stdout, ledger, other); err != nil {
				fail(err)
			}
		}
	default:
		if err := traceview.Summary(os.Stdout, ledger); err != nil {
			fail(err)
		}
	}
}

// followLoop polls the ledger/event streams and redraws the dashboard until
// the run's run_done event arrives (never, without an event stream). The
// first frame renders immediately so attaching to a finished run is a
// one-shot report.
func followLoop(ledger, events string, topN int, interval time.Duration, width int) error {
	if interval <= 0 {
		interval = time.Second
	}
	f := traceview.NewFollower(ledger, events, topN)
	for {
		if _, err := f.Poll(); err != nil {
			return err
		}
		fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		if err := f.Render(os.Stdout, width+36); err != nil {
			return err
		}
		if f.Done() {
			return nil
		}
		time.Sleep(interval)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fltrace:", err)
	os.Exit(1)
}
