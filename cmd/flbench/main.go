// Command flbench regenerates the paper's tables and figures.
//
// Usage:
//
//	flbench -list
//	flbench -exp table1 -scale fast
//	flbench -exp fig9a -scale bench -csv -o fig9a.csv
//	flbench -exp all -scale bench
//
// Each experiment prints the rows/series behind the corresponding table or
// figure of the paper; see DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded paper-vs-measured results.
//
// With -bench-json <path> it instead runs the hot-path micro-benchmarks
// (train step, im2col, matmul, δ computation) and records ns/op, B/op, and
// allocs/op as JSON — the per-PR regression records kept in BENCH_*.json
// (BENCH_hotpath.json, BENCH_gemm.json, …). With -bench-compare PREV,CUR it
// diffs two such records and exits non-zero when a case regressed by more
// than 10% of a best-of-3 ns/op measurement or grew its steady-state
// allocations (`make bench-compare`); it warns when either record was made
// at GOMAXPROCS=1 (whose parallel_speedup columns are ~1.0 by construction)
// and fails on that with -require-multicore. With -bench-smoke it measures
// the two largest Scaling shapes serial vs NumCPU-parallel and exits
// non-zero when the parallel kernel path is not at least break-even
// (`make bench-smoke`; skipped with a warning on single-CPU machines).
//
// With -telemetry-smoke it runs a short in-process federated session against
// a fresh metric registry, scrapes the /metrics endpoint, and exits non-zero
// if any core series is missing — the CI gate behind `make telemetry-smoke`.
// -telemetry prints the process registry summary after an experiment run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/cliflags"
	"repro/internal/experiments"
	"repro/internal/telemetry"
)

func main() {
	var (
		exp        = flag.String("exp", "", "experiment id (or 'all'); see -list")
		scale      = flag.String("scale", "bench", "scale preset: bench, fast, or paper")
		asCSV      = flag.Bool("csv", false, "emit CSV instead of an aligned text table")
		outPath    = flag.String("o", "", "write the result to this file instead of stdout")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		quiet      = flag.Bool("q", false, "suppress progress logging")
		benchJSON  = flag.String("bench-json", "", "run hot-path micro-benchmarks, write JSON report to this path, and exit")
		benchCmp   = flag.String("bench-compare", "", "compare two bench JSON records given as PREV,CUR; exit 1 on >10% ns/op regression")
		benchSmoke = flag.Bool("bench-smoke", false, "assert the parallel kernel path beats serial on the largest shapes; skips with a warning on single-CPU machines")
		reqMulti   = flag.Bool("require-multicore", false, "with -bench-compare: fail when either record was made at GOMAXPROCS=1 or num_cpu=1")
		smoke      = flag.Bool("telemetry-smoke", false, "run a short instrumented session, scrape /metrics, and fail on missing core series")
		healthURL  = flag.String("health-scrape", "", "poll this /debug/fl/health URL until it serves a live snapshot with per-client scores and a firing alert, then exit (the health-smoke CI gate)")
		scrapeWait = flag.Duration("scrape-timeout", 60*time.Second, "give up on -health-scrape after this long")
		showTelem  = cliflags.Summary()
	)
	flag.Parse()

	if *healthURL != "" {
		if err := healthScrape(*healthURL, *scrapeWait); err != nil {
			fmt.Fprintln(os.Stderr, "flbench: health-scrape:", err)
			os.Exit(1)
		}
		fmt.Println("health scrape passed")
		return
	}

	if *smoke {
		if err := telemetrySmoke(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "flbench: telemetry-smoke:", err)
			os.Exit(1)
		}
		fmt.Println("telemetry smoke test passed")
		return
	}

	if *benchSmoke {
		if err := bench.Smoke(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "flbench:", err)
			os.Exit(1)
		}
		return
	}

	if *benchCmp != "" {
		prevPath, curPath, ok := strings.Cut(*benchCmp, ",")
		if !ok {
			fmt.Fprintln(os.Stderr, "flbench: -bench-compare wants PREV,CUR (two JSON paths)")
			os.Exit(2)
		}
		if err := bench.CompareFiles(prevPath, curPath, os.Stdout, *reqMulti); err != nil {
			fmt.Fprintln(os.Stderr, "flbench:", err)
			os.Exit(1)
		}
		return
	}

	if *benchJSON != "" {
		fmt.Fprintln(os.Stderr, "running hot-path micro-benchmarks…")
		if err := bench.WriteJSON(*benchJSON); err != nil {
			fmt.Fprintln(os.Stderr, "flbench:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "wrote", *benchJSON)
		return
	}

	if *list {
		for _, id := range experiments.List() {
			fmt.Printf("%-8s %s\n", id, experiments.Title(id))
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "flbench: -exp is required (use -list to see ids)")
		os.Exit(2)
	}
	sc, err := experiments.ParseScale(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flbench:", err)
		os.Exit(2)
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.List()
	}

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	logW := io.Writer(os.Stderr)
	if *quiet {
		logW = io.Discard
	}

	for _, id := range ids {
		run, err := experiments.Get(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flbench:", err)
			os.Exit(2)
		}
		fmt.Fprintf(logW, "running %s (%s) at scale %s…\n", id, experiments.Title(id), sc)
		res, err := run(sc, logW)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		if *asCSV {
			err = res.CSV(out)
		} else {
			err = res.Write(out)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "flbench: writing %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Fprintln(out)
	}
	if *showTelem {
		fmt.Fprintln(os.Stderr, "telemetry summary:")
		telemetry.Default().WriteSummary(os.Stderr)
	}
}
