package main

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"

	"repro/internal/compress"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// smokeSeries are the core series a scrape of a live rFedAvg+ session must
// expose. Counters and histograms appear as soon as they are registered, so
// presence proves the whole instrumentation path is wired, not that every
// fault type occurred during the two smoke rounds.
var smokeSeries = []string{
	`rfl_rounds_completed_total 2`,
	`rfl_round_retries_total`,
	`rfl_evictions_total`,
	`rfl_rejoins_total`,
	`rfl_round_seconds_bucket`,
	`rfl_phase_seconds_bucket{phase="join"`,
	`rfl_phase_seconds_bucket{phase="broadcast"`,
	`rfl_phase_seconds_bucket{phase="gather"`,
	`rfl_phase_seconds_bucket{phase="delta_sync"`,
	`rfl_bytes_sent_total{algo="rfedavg+"}`,
	`rfl_bytes_received_total{algo="rfedavg+"}`,
	`rfl_delta_staleness_age_bucket`,
	`rfl_delta_stale_rows`,
}

// codecSeries must additionally appear when the session negotiates the int8
// uplink codec.
var codecSeries = []string{
	`rfl_codec_payload_bytes_total{dir="recv",scheme="q8"}`,
	`rfl_codec_payload_bytes_total{dir="sent",scheme="dense"}`,
}

// telemetrySmoke runs a 3-client, 2-round rFedAvg+ session over in-process
// pipes against a fresh registry served on a loopback listener, then
// scrapes /metrics like a Prometheus agent would and checks every core
// series is present. It also probes /healthz and /debug/pprof/.
func telemetrySmoke(w io.Writer) error {
	reg := telemetry.NewRegistry()
	srv, err := telemetry.ListenAndServe("127.0.0.1:0", reg)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Fprintf(w, "scrape target: http://%s/metrics\n", srv.Addr())

	if err := runSmokeSession(reg, transport.CodecPolicy{}); err != nil {
		return err
	}

	body, err := get(srv.Addr(), "/metrics")
	if err != nil {
		return err
	}
	var missing []string
	for _, s := range smokeSeries {
		if !strings.Contains(body, s) {
			missing = append(missing, s)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("scrape is missing %d core series:\n  %s\n--- scrape ---\n%s",
			len(missing), strings.Join(missing, "\n  "), body)
	}
	if health, err := get(srv.Addr(), "/healthz"); err != nil || !strings.Contains(health, "ok") {
		return fmt.Errorf("/healthz not ok: %q, %v", health, err)
	}
	if _, err := get(srv.Addr(), "/debug/pprof/"); err != nil {
		return fmt.Errorf("/debug/pprof/: %w", err)
	}
	fmt.Fprintf(w, "all %d core series present; /healthz and /debug/pprof/ responding\n", len(smokeSeries))
	return codecSmoke(w, reg)
}

// codecSmoke reruns the session with the int8 uplink codec on a second
// registry and gates on the compression contract: the codec byte series
// appear in a scrape, the server's received bytes shrink at least 4× against
// the dense run, and the process-wide reconstruction-error histogram
// engaged.
func codecSmoke(w io.Writer, dense *telemetry.Registry) error {
	reg := telemetry.NewRegistry()
	srv, err := telemetry.ListenAndServe("127.0.0.1:0", reg)
	if err != nil {
		return err
	}
	defer srv.Close()

	if err := runSmokeSession(reg, transport.CodecPolicy{
		Update: compress.SchemeInt8,
		Delta:  compress.SchemeInt8,
	}); err != nil {
		return fmt.Errorf("codec session: %w", err)
	}

	body, err := get(srv.Addr(), "/metrics")
	if err != nil {
		return err
	}
	var missing []string
	for _, s := range codecSeries {
		if !strings.Contains(body, s) {
			missing = append(missing, s)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("codec scrape is missing %d series:\n  %s\n--- scrape ---\n%s",
			len(missing), strings.Join(missing, "\n  "), body)
	}

	const recvSeries = `rfl_bytes_received_total{algo="rfedavg+"}`
	denseUp := dense.Counter(recvSeries, "").Value()
	q8Up := reg.Counter(recvSeries, "").Value()
	if denseUp == 0 || q8Up == 0 {
		return fmt.Errorf("uplink byte counters empty: dense %d, q8 %d", denseUp, q8Up)
	}
	if q8Up*4 > denseUp {
		return fmt.Errorf("q8 uplink %d B is not ≥4× below dense %d B", q8Up, denseUp)
	}
	if n := compress.ReconErrCount(compress.SchemeInt8); n == 0 {
		return fmt.Errorf("no q8 reconstruction-error observations recorded")
	}
	fmt.Fprintf(w, "codec smoke: q8 uplink %d B vs dense %d B (%.1fx reduction)\n",
		q8Up, denseUp, float64(denseUp)/float64(q8Up))
	return nil
}

// runSmokeSession drives a short in-process federated session recording
// into reg, under the given wire-codec policy.
func runSmokeSession(reg *telemetry.Registry, codec transport.CodecPolicy) error {
	const clients, rounds = 3, 2
	train := data.SynthMNIST(240, 1)
	parts := data.PartitionBySimilarity(train.Y, clients, 0, rand.New(rand.NewSource(2)))
	builder := nn.NewMLP(train.Features(), 16, 8, train.Classes)
	net := builder(7)

	serverConns := make([]transport.Conn, clients)
	clientConns := make([]transport.Conn, clients)
	for i := range serverConns {
		serverConns[i], clientConns[i] = transport.Pipe()
	}
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = transport.RunClient(clientConns[i], train.Subset(parts[i]), transport.ClientConfig{
				Builder: builder, ModelSeed: 7, Seed: int64(100 + i),
				LocalSteps: 2, BatchSize: 16, LR: opt.ConstLR(0.1), Lambda: 1e-3,
			})
		}(i)
	}
	_, err := transport.Serve(transport.ServerConfig{
		Algorithm:     transport.AlgoRFedAvgPlus,
		Rounds:        rounds,
		InitialParams: net.GetFlat(),
		FeatureDim:    net.FeatureDim,
		Seed:          5,
		Codec:         codec,
		Metrics:       reg,
	}, serverConns)
	wg.Wait()
	if err != nil {
		return fmt.Errorf("smoke session: %w", err)
	}
	for i, e := range errs {
		if e != nil {
			return fmt.Errorf("smoke client %d: %w", i, e)
		}
	}
	return nil
}

func get(addr, path string) (string, error) {
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return string(body), fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
	}
	return string(body), nil
}
