package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// healthScrape polls a running server's /debug/fl/health endpoint until the
// snapshot proves the monitor is live: a verdict, at least one per-client
// entry carrying a score, and at least one alert (the smoke harness injects
// a fault, so an alert must fire). It is the assertion half of
// `make health-smoke` — the run itself is started by the Makefile.
func healthScrape(url string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	client := &http.Client{Timeout: 5 * time.Second}
	var lastErr error = fmt.Errorf("no scrape attempted")
	for time.Now().Before(deadline) {
		if err := scrapeOnce(client, url); err != nil {
			lastErr = err
			time.Sleep(150 * time.Millisecond)
			continue
		}
		return nil
	}
	return fmt.Errorf("timed out after %s: %w", timeout, lastErr)
}

// scrapeOnce fetches and validates one snapshot.
func scrapeOnce(client *http.Client, url string) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %s", resp.Status)
	}
	var snap struct {
		Round   int    `json:"round"`
		Verdict string `json:"verdict"`
		Clients []struct {
			ID    int      `json:"id"`
			Score *float64 `json:"score"`
		} `json:"clients"`
		Alerts []struct {
			Rule string `json:"rule"`
		} `json:"alerts"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		return fmt.Errorf("invalid snapshot JSON: %w", err)
	}
	switch {
	case snap.Verdict == "" || snap.Verdict == "off":
		return fmt.Errorf("monitor not live (verdict %q)", snap.Verdict)
	case len(snap.Clients) == 0:
		return fmt.Errorf("no per-client scores yet (round %d)", snap.Round)
	case len(snap.Alerts) == 0:
		return fmt.Errorf("no active alerts yet (round %d, %d clients)", snap.Round, len(snap.Clients))
	}
	for _, c := range snap.Clients {
		if c.Score == nil {
			continue // unknown scores marshal as null; at least one must be numeric
		}
		if *c.Score < 0 || *c.Score > 1 {
			return fmt.Errorf("client %d score %g outside [0,1]", c.ID, *c.Score)
		}
	}
	return nil
}
